// Package invariant checks the paper's security properties over whole
// simulation runs. It is the conformance half of the adversarial
// harness: internal/adversary plays the attacker, this package plays
// the referee.
//
// The checker is an event recorder. Scenario code feeds it ground
// truth as the run unfolds — EphIDs issued (Section IV-C), dials
// initiated and handshakes accepted (Section IV-D1), messages
// delivered through the per-flow taps of internal/host, shutoffs
// applied (Section IV-E), and attack frames injected
// (internal/adversary) — and Check replays the trace against the
// invariant list:
//
//   - attributable:     every delivered packet's source EphID was
//     genuinely issued by the AS it claims (Sections III-B, IV-D3).
//   - no-forged-accept: no attacker-fabricated EphID ever reached an
//     application, as a data source or a handshake peer (Section IV-B).
//   - shutoff-stops:    after a shutoff lands (plus an in-flight grace
//     window), nothing more is delivered from the revoked EphID
//     (Section IV-E).
//   - no-replay:        no (flow, nonce) pair is delivered twice and no
//     flow completes more handshakes than were dialed (Section VIII-D).
//   - flow-unlinkable:  under per-flow granularity a source EphID
//     appears in at most one flow (Section VIII-A) — reuse would let
//     observers link flows.
package invariant

import (
	"encoding/json"
	"fmt"
	"time"

	"apna/internal/ephid"
	"apna/internal/host"
	"apna/internal/wire"
)

// Invariant names (stable identifiers used in reports and JSON).
const (
	InvAttributable   = "attributable"
	InvNoForgedAccept = "no-forged-accept"
	InvShutoffStops   = "shutoff-stops"
	InvNoReplay       = "no-replay"
	InvFlowUnlinkable = "flow-unlinkable"
)

// flowKey identifies a unidirectional flow by its endpoints.
type flowKey struct {
	src, dst wire.Endpoint
}

// delivery is one recorded application-level delivery.
type delivery struct {
	at    time.Duration
	host  string
	flow  wire.Flow
	nonce uint64
}

// Checker accumulates a run's trace. It is driven from simulator
// callbacks on a single goroutine, like everything else in the
// simulation.
type Checker struct {
	now func() time.Duration
	// grace is how long after a shutoff in-flight packets may still
	// legitimately arrive (maximum path delay under the run's chaos
	// configuration).
	grace time.Duration

	issued     map[ephid.EphID]ephid.AID
	dials      map[flowKey]int
	accepts    map[flowKey]int
	acceptAt   map[flowKey]time.Duration
	deliveries []delivery
	revokedAt  map[ephid.EphID]time.Duration
	forged     map[ephid.EphID]bool
}

// New creates a checker. now supplies virtual time (the simulator's
// clock); grace bounds how long after a shutoff in-flight traffic may
// still arrive.
func New(now func() time.Duration, grace time.Duration) *Checker {
	return &Checker{
		now: now, grace: grace,
		issued:    make(map[ephid.EphID]ephid.AID),
		dials:     make(map[flowKey]int),
		accepts:   make(map[flowKey]int),
		acceptAt:  make(map[flowKey]time.Duration),
		revokedAt: make(map[ephid.EphID]time.Duration),
		forged:    make(map[ephid.EphID]bool),
	}
}

// Issued records that an AS issued an EphID to one of its hosts —
// including the service and control EphIDs stood up at bootstrap if
// their traffic can reach the observed hosts.
func (c *Checker) Issued(aid ephid.AID, e ephid.EphID) { c.issued[e] = aid }

// Dialed records a handshake initiation from src toward dst.
func (c *Checker) Dialed(src, dst wire.Endpoint) { c.dials[flowKey{src, dst}]++ }

// Accepted records a responder-side handshake completion: peer is the
// initiating endpoint, addressed the endpoint the initiator dialed
// (matching the key recorded by Dialed). Wire it to host.OnAccept.
func (c *Checker) Accepted(peer, addressed wire.Endpoint) {
	k := flowKey{peer, addressed}
	c.accepts[k]++
	c.acceptAt[k] = c.now()
}

// Delivered records an application-level delivery on hostName's stack.
// Wire it to host.OnMessage (or a per-flow tap); the nonce is read from
// the message's retained raw frame.
func (c *Checker) Delivered(hostName string, m host.Message) {
	var nonce uint64
	var hdr wire.Header
	if err := hdr.DecodeFromBytes(m.Raw); err == nil {
		nonce = hdr.Nonce
	}
	c.deliveries = append(c.deliveries, delivery{
		at: c.now(), host: hostName, flow: m.Flow, nonce: nonce,
	})
}

// Revoked records that a shutoff for e has been applied at the border
// routers by the current virtual time.
func (c *Checker) Revoked(e ephid.EphID) {
	if _, dup := c.revokedAt[e]; !dup {
		c.revokedAt[e] = c.now()
	}
}

// ForgedInjected records an attacker-fabricated source EphID — the
// kinds adversary.Kind.Fabricated reports: forged, spoofed or expired
// injections. Foreign and framing injections are NOT fabricated (they
// name genuine honest-host EphIDs, so recording them would flag the
// victims' legitimate traffic), and replays of genuine frames are
// covered by the replay invariant instead.
func (c *Checker) ForgedInjected(e ephid.EphID) { c.forged[e] = true }

// Violation is one concrete invariant breach.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// Result is the verdict for one invariant.
type Result struct {
	Name string `json:"name"`
	// Section cites the paper property the invariant encodes.
	Section    string      `json:"section"`
	OK         bool        `json:"ok"`
	Checked    int         `json:"checked"`
	Violations []Violation `json:"violations,omitempty"`
}

// Report is the verdict for a whole run.
type Report struct {
	OK      bool     `json:"ok"`
	Results []Result `json:"invariants"`
}

// JSON renders the report as one JSON object.
func (r *Report) JSON() ([]byte, error) { return json.Marshal(r) }

// registry is the named-invariant table in canonical check order.
// Declarative scenario specs select invariant subsets by these names.
var registry = []string{
	InvAttributable,
	InvNoForgedAccept,
	InvShutoffStops,
	InvNoReplay,
	InvFlowUnlinkable,
}

// Names returns every registered invariant name in canonical check
// order. The slice is a copy; callers may mutate it.
func Names() []string { return append([]string(nil), registry...) }

// Known reports whether name identifies a registered invariant.
func Known(name string) bool {
	for _, n := range registry {
		if n == name {
			return true
		}
	}
	return false
}

func (c *Checker) checkFor(name string) func() Result {
	switch name {
	case InvAttributable:
		return c.checkAttributable
	case InvNoForgedAccept:
		return c.checkNoForgedAccept
	case InvShutoffStops:
		return c.checkShutoffStops
	case InvNoReplay:
		return c.checkNoReplay
	case InvFlowUnlinkable:
		return c.checkFlowUnlinkable
	default:
		return nil
	}
}

// Check replays the recorded trace against every invariant.
func (c *Checker) Check() *Report {
	rep, err := c.CheckSelected(nil)
	if err != nil {
		// Unreachable: nil selects the registry, whose names all resolve.
		panic(err)
	}
	return rep
}

// CheckSelected replays the recorded trace against the named invariants
// only, in canonical registry order regardless of the order given. A
// nil or empty selection checks everything; an unknown name is an
// error, not a silent skip — a spec asking for a property that does not
// exist must fail loudly.
func (c *Checker) CheckSelected(names []string) (*Report, error) {
	selected := registry
	if len(names) > 0 {
		want := make(map[string]bool, len(names))
		for _, n := range names {
			if !Known(n) {
				return nil, fmt.Errorf("invariant: unknown invariant %q (have %v)", n, registry)
			}
			want[n] = true
		}
		selected = selected[:0:0]
		for _, n := range registry {
			if want[n] {
				selected = append(selected, n)
			}
		}
	}
	rep := &Report{OK: true}
	for _, name := range selected {
		res := c.checkFor(name)()
		res.OK = len(res.Violations) == 0
		rep.OK = rep.OK && res.OK
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

func (c *Checker) checkAttributable() Result {
	res := Result{Name: InvAttributable, Section: "III-B, IV-D3"}
	for _, d := range c.deliveries {
		res.Checked++
		aid, ok := c.issued[d.flow.Src.EphID]
		switch {
		case !ok:
			res.Violations = append(res.Violations, Violation{InvAttributable,
				fmt.Sprintf("%s received %v from unissued EphID at %v", d.host, d.flow, d.at)})
		case aid != d.flow.Src.AID:
			res.Violations = append(res.Violations, Violation{InvAttributable,
				fmt.Sprintf("%s received %v claiming %v but EphID was issued by %v",
					d.host, d.flow, d.flow.Src.AID, aid)})
		}
	}
	return res
}

func (c *Checker) checkNoForgedAccept() Result {
	res := Result{Name: InvNoForgedAccept, Section: "IV-B"}
	for _, d := range c.deliveries {
		res.Checked++
		if c.forged[d.flow.Src.EphID] {
			res.Violations = append(res.Violations, Violation{InvNoForgedAccept,
				fmt.Sprintf("%s accepted data from forged EphID %v at %v", d.host, d.flow.Src, d.at)})
		}
	}
	for k := range c.accepts {
		res.Checked++
		if c.forged[k.src.EphID] {
			res.Violations = append(res.Violations, Violation{InvNoForgedAccept,
				fmt.Sprintf("handshake accepted from forged EphID %v", k.src)})
		}
	}
	return res
}

func (c *Checker) checkShutoffStops() Result {
	res := Result{Name: InvShutoffStops, Section: "IV-E"}
	for _, d := range c.deliveries {
		rev, ok := c.revokedAt[d.flow.Src.EphID]
		if !ok {
			continue
		}
		res.Checked++
		if d.at > rev+c.grace {
			res.Violations = append(res.Violations, Violation{InvShutoffStops,
				fmt.Sprintf("%s received %v at %v, %v after shutoff(+grace %v) at %v",
					d.host, d.flow, d.at, d.at-rev, c.grace, rev)})
		}
	}
	return res
}

func (c *Checker) checkNoReplay() Result {
	res := Result{Name: InvNoReplay, Section: "VIII-D"}
	seen := make(map[string]bool, len(c.deliveries))
	for _, d := range c.deliveries {
		res.Checked++
		key := fmt.Sprintf("%s|%d", d.flow, d.nonce)
		if seen[key] {
			res.Violations = append(res.Violations, Violation{InvNoReplay,
				fmt.Sprintf("%s delivered flow %v nonce %d twice", d.host, d.flow, d.nonce)})
		}
		seen[key] = true
	}
	for k, n := range c.accepts {
		res.Checked++
		if dials := c.dials[k]; n > dials {
			res.Violations = append(res.Violations, Violation{InvNoReplay,
				fmt.Sprintf("flow %v->%v completed %d handshakes for %d dials", k.src, k.dst, n, dials)})
		}
	}
	return res
}

func (c *Checker) checkFlowUnlinkable() Result {
	res := Result{Name: InvFlowUnlinkable, Section: "VIII-A"}
	peers := make(map[ephid.EphID]map[wire.Endpoint]bool)
	note := func(src ephid.EphID, dst wire.Endpoint) {
		if peers[src] == nil {
			peers[src] = make(map[wire.Endpoint]bool)
		}
		peers[src][dst] = true
	}
	for k := range c.dials {
		note(k.src.EphID, k.dst)
	}
	for _, d := range c.deliveries {
		note(d.flow.Src.EphID, d.flow.Dst)
	}
	for src, dsts := range peers {
		res.Checked++
		if len(dsts) > 1 {
			res.Violations = append(res.Violations, Violation{InvFlowUnlinkable,
				fmt.Sprintf("source EphID %v used toward %d peers", src, len(dsts))})
		}
	}
	return res
}
