package invariant

import (
	"strings"
	"testing"
	"time"

	"apna/internal/ephid"
	"apna/internal/host"
	"apna/internal/wire"
)

// tick is a controllable virtual clock.
type tick struct{ now time.Duration }

func (t *tick) fn() func() time.Duration { return func() time.Duration { return t.now } }

func ep(aid ephid.AID, tag byte) wire.Endpoint {
	var e ephid.EphID
	e[0] = tag
	return wire.Endpoint{AID: aid, EphID: e}
}

// msg builds a delivered message with a raw frame carrying nonce.
func msg(t *testing.T, src, dst wire.Endpoint, nonce uint64) host.Message {
	t.Helper()
	p := wire.Packet{Header: wire.Header{
		NextProto: wire.ProtoSession, Nonce: nonce,
		SrcAID: src.AID, DstAID: dst.AID,
		SrcEphID: src.EphID, DstEphID: dst.EphID,
	}}
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return host.Message{Flow: wire.Flow{Src: src, Dst: dst}, Raw: raw}
}

func result(t *testing.T, rep *Report, name string) Result {
	t.Helper()
	for _, r := range rep.Results {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no result %q in %+v", name, rep)
	return Result{}
}

func TestCleanTraceHoldsAllInvariants(t *testing.T) {
	clk := &tick{}
	c := New(clk.fn(), 10*time.Millisecond)
	src, dst := ep(1, 1), ep(2, 2)
	c.Issued(1, src.EphID)
	c.Issued(2, dst.EphID)
	c.Dialed(src, dst)
	c.Accepted(src, dst)
	clk.now = time.Millisecond
	c.Delivered("bob", msg(t, src, dst, 1))
	c.Delivered("bob", msg(t, src, dst, 2))

	rep := c.Check()
	if !rep.OK {
		raw, _ := rep.JSON()
		t.Fatalf("clean trace violated invariants: %s", raw)
	}
	if len(rep.Results) != 5 {
		t.Errorf("results = %d, want 5 invariants", len(rep.Results))
	}
}

func TestUnattributableDeliveryCaught(t *testing.T) {
	c := New((&tick{}).fn(), 0)
	src, dst := ep(1, 1), ep(2, 2)
	// src never issued.
	c.Delivered("bob", msg(t, src, dst, 1))
	rep := c.Check()
	if r := result(t, rep, InvAttributable); r.OK || len(r.Violations) != 1 {
		t.Errorf("unissued source not caught: %+v", r)
	}
	// Issued, but by a different AS than the packet claims.
	c2 := New((&tick{}).fn(), 0)
	c2.Issued(7, src.EphID)
	c2.Delivered("bob", msg(t, src, dst, 1))
	if r := result(t, c2.Check(), InvAttributable); r.OK {
		t.Error("cross-AS attribution mismatch not caught")
	}
}

func TestForgedAcceptCaught(t *testing.T) {
	c := New((&tick{}).fn(), 0)
	forged, dst := ep(1, 9), ep(2, 2)
	c.Issued(1, forged.EphID) // even a collision with an issued ID:
	c.ForgedInjected(forged.EphID)
	c.Delivered("bob", msg(t, forged, dst, 1))
	if r := result(t, c.Check(), InvNoForgedAccept); r.OK {
		t.Error("forged delivery not caught")
	}

	c2 := New((&tick{}).fn(), 0)
	c2.ForgedInjected(forged.EphID)
	c2.Accepted(forged, dst)
	if r := result(t, c2.Check(), InvNoForgedAccept); r.OK {
		t.Error("forged handshake accept not caught")
	}
}

func TestShutoffGraceSemantics(t *testing.T) {
	clk := &tick{}
	c := New(clk.fn(), 5*time.Millisecond)
	src, dst := ep(1, 1), ep(2, 2)
	c.Issued(1, src.EphID)
	c.Dialed(src, dst)

	clk.now = 10 * time.Millisecond
	c.Revoked(src.EphID)
	// Within grace: in-flight packet, legitimate.
	clk.now = 14 * time.Millisecond
	c.Delivered("bob", msg(t, src, dst, 1))
	if r := result(t, c.Check(), InvShutoffStops); !r.OK {
		t.Errorf("in-grace delivery flagged: %+v", r.Violations)
	}
	// Past grace: the shutoff failed to stop traffic.
	clk.now = 16 * time.Millisecond
	c.Delivered("bob", msg(t, src, dst, 2))
	if r := result(t, c.Check(), InvShutoffStops); r.OK {
		t.Error("post-grace delivery not caught")
	}
}

func TestReplayCaught(t *testing.T) {
	c := New((&tick{}).fn(), 0)
	src, dst := ep(1, 1), ep(2, 2)
	c.Issued(1, src.EphID)
	c.Dialed(src, dst)
	c.Delivered("bob", msg(t, src, dst, 42))
	c.Delivered("bob", msg(t, src, dst, 42)) // same flow+nonce twice
	if r := result(t, c.Check(), InvNoReplay); r.OK || len(r.Violations) != 1 {
		t.Errorf("replayed delivery not caught: %+v", r)
	}
}

func TestReplayedHandshakeCaught(t *testing.T) {
	c := New((&tick{}).fn(), 0)
	src, dst := ep(1, 1), ep(2, 2)
	c.Dialed(src, dst)
	c.Accepted(src, dst)
	c.Accepted(src, dst) // one dial, two completions
	if r := result(t, c.Check(), InvNoReplay); r.OK {
		t.Error("handshake completing twice for one dial not caught")
	}
}

func TestFlowReuseCaught(t *testing.T) {
	c := New((&tick{}).fn(), 0)
	src := ep(1, 1)
	c.Issued(1, src.EphID)
	c.Dialed(src, ep(2, 2))
	c.Dialed(src, ep(3, 3)) // same source EphID toward a second peer
	if r := result(t, c.Check(), InvFlowUnlinkable); r.OK {
		t.Error("cross-flow EphID reuse not caught")
	}
}

func TestReportJSON(t *testing.T) {
	c := New((&tick{}).fn(), 0)
	c.Delivered("bob", msg(t, ep(1, 1), ep(2, 2), 1))
	raw, err := c.Check().JSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{`"ok":false`, InvAttributable, `"violations"`, `"section"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q: %s", want, s)
		}
	}
}
