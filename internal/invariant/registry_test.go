package invariant

import (
	"testing"
	"time"

	"apna/internal/ephid"
	"apna/internal/host"
	"apna/internal/wire"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{InvAttributable, InvNoForgedAccept, InvShutoffStops, InvNoReplay, InvFlowUnlinkable}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], want[i])
		}
		if !Known(want[i]) {
			t.Fatalf("Known(%q) = false", want[i])
		}
	}
	if Known("bogus") {
		t.Fatal("Known(bogus) = true")
	}
	// Names returns a copy.
	names[0] = "mutated"
	if Names()[0] != InvAttributable {
		t.Fatal("Names() exposed registry backing array")
	}
}

func TestCheckSelected(t *testing.T) {
	var now time.Duration
	c := New(func() time.Duration { return now }, time.Millisecond)

	// One attributability violation: a delivery from an EphID nobody
	// issued.
	var e ephid.EphID
	e[0] = 0xAB
	c.Delivered("victim", deliveredFrom(e))

	full := c.Check()
	if full.OK {
		t.Fatal("full check should fail on the unissued delivery")
	}
	if len(full.Results) != len(Names()) {
		t.Fatalf("full check ran %d invariants, want %d", len(full.Results), len(Names()))
	}

	// Selecting only no-replay must pass (the violation is invisible to
	// it) and return exactly one result.
	sub, err := c.CheckSelected([]string{InvNoReplay})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.OK || len(sub.Results) != 1 || sub.Results[0].Name != InvNoReplay {
		t.Fatalf("subset check: %+v", sub)
	}

	// Selection order is canonicalized.
	two, err := c.CheckSelected([]string{InvNoReplay, InvAttributable})
	if err != nil {
		t.Fatal(err)
	}
	if len(two.Results) != 2 || two.Results[0].Name != InvAttributable || two.Results[1].Name != InvNoReplay {
		t.Fatalf("selection not canonicalized: %+v", two.Results)
	}
	if two.OK {
		t.Fatal("attributable subset should fail")
	}

	// Unknown names are an error.
	if _, err := c.CheckSelected([]string{"no-such-invariant"}); err == nil {
		t.Fatal("unknown invariant accepted")
	}

	// Empty selection = everything.
	all, err := c.CheckSelected(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Results) != len(Names()) {
		t.Fatalf("nil selection ran %d invariants", len(all.Results))
	}
}

// deliveredFrom fabricates a minimal delivery (Delivered only reads
// Flow and Raw).
func deliveredFrom(src ephid.EphID) (m host.Message) {
	m.Flow = wire.Flow{Src: wire.Endpoint{AID: 100, EphID: src}, Dst: wire.Endpoint{AID: 200}}
	return m
}
