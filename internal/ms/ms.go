// Package ms implements the EphID Management Service — the AS entity
// that issues ephemeral identifiers to hosts (paper Sections IV-C and
// V-A, Figures 3 and 6).
//
// The issuance protocol: the host sends an encrypted request (under the
// kHA key it shares with the AS) carrying a freshly generated ephemeral
// public key; the MS validates the host's control EphID, mints a new
// EphID, certifies the binding between the EphID and the host's key
// with a short-lived certificate, and returns the certificate encrypted.
// Both directions are encrypted so an observer inside the AS cannot
// link the issued EphIDs to the requesting control EphID
// (sender-flow unlinkability, Section IV-C).
package ms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"apna/internal/cert"
	"apna/internal/crypto"
	"apna/internal/ephid"
	"apna/internal/hostdb"
)

// Errors returned by the service.
var (
	ErrBadEphID      = errors.New("ms: invalid source EphID")
	ErrExpiredEphID  = errors.New("ms: control EphID expired")
	ErrUnknownHost   = errors.New("ms: unknown or revoked HID")
	ErrBadRequest    = errors.New("ms: malformed request")
	ErrDecryptFailed = errors.New("ms: request decryption failed")
	// ErrForeignPrev means a renewal named a predecessor EphID that does
	// not belong to the requesting host — either a forgery or an attempt
	// to launder another host's identifier history.
	ErrForeignPrev = errors.New("ms: renewal predecessor belongs to another host")
	// ErrRenewRateLimited means the host exhausted its renewal budget
	// for the current window. A compromised host churning identifiers to
	// dodge shutoff strikes hits this wall (Section VIII-G2).
	ErrRenewRateLimited = errors.New("ms: renewal rate limit exceeded")
)

// Request flag bits.
const (
	// ReqFlagRenew marks a renewal: the request names a predecessor
	// EphID in Prev, the MS validates it belongs to the same host and
	// charges the issuance against the host's renewal budget.
	ReqFlagRenew = 1 << 0
)

// Request is the plaintext interior of an EphID request message. The
// host generates the key pair for the EphID itself, because the keys
// will protect data the AS must not read (Section IV-C).
type Request struct {
	// Kind of EphID requested (data or receive-only; control EphIDs
	// come from the RS at bootstrap).
	Kind ephid.Kind
	// Flags carries the request flag bits (ReqFlagRenew).
	Flags byte
	// Lifetime is the requested validity in seconds; the MS clamps it
	// to its policy (Section VIII-G1 discusses letting hosts express
	// expiration-time choices).
	Lifetime uint32
	// Prev is the predecessor EphID a renewal succeeds; zero (and
	// ignored) for plain issuance.
	Prev ephid.EphID
	// DHPub is the X25519 public key to bind to the EphID.
	DHPub [crypto.X25519PublicKeySize]byte
	// SigPub is the Ed25519 public key to bind to the EphID.
	SigPub [crypto.SigningPublicKeySize]byte
}

// RequestSize is the encoded request size.
const RequestSize = 1 + 1 + 4 + ephid.Size + crypto.X25519PublicKeySize + crypto.SigningPublicKeySize

// Renewing reports whether the request is a renewal.
func (r *Request) Renewing() bool { return r.Flags&ReqFlagRenew != 0 }

// Encode serializes the request.
func (r *Request) Encode() []byte {
	buf := make([]byte, 0, RequestSize)
	buf = append(buf, byte(r.Kind), r.Flags)
	buf = binary.BigEndian.AppendUint32(buf, r.Lifetime)
	buf = append(buf, r.Prev[:]...)
	buf = append(buf, r.DHPub[:]...)
	buf = append(buf, r.SigPub[:]...)
	return buf
}

// DecodeRequest parses a request.
func DecodeRequest(data []byte) (*Request, error) {
	if len(data) != RequestSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadRequest, len(data))
	}
	var r Request
	r.Kind = ephid.Kind(data[0])
	r.Flags = data[1]
	r.Lifetime = binary.BigEndian.Uint32(data[2:])
	off := 6
	copy(r.Prev[:], data[off:])
	off += ephid.Size
	copy(r.DHPub[:], data[off:])
	off += crypto.X25519PublicKeySize
	copy(r.SigPub[:], data[off:])
	return &r, nil
}

// Policy bounds issued EphID lifetimes. The paper suggests 15 minutes
// for per-flow EphIDs, since 98% of Internet flows last less than that
// (Section VIII-G1).
type Policy struct {
	// DefaultLifetime is used when the host requests 0.
	DefaultLifetime uint32
	// MaxLifetime caps requests.
	MaxLifetime uint32
	// RenewBurst is how many renewals one host may perform per
	// RenewWindow seconds. Zero disables the limit. Rate-limiting
	// renewals (but not plain issuance, which is bounded by pool policy)
	// keeps a compromised host from churning identifiers faster than
	// shutoff strikes can accumulate against them (Section VIII-G2).
	RenewBurst int
	// RenewWindow is the renewal rate-limit window in seconds; 0 falls
	// back to DefaultRenewWindow when RenewBurst is set.
	RenewWindow uint32
}

// DefaultRenewWindow is the renewal rate-limit window when a policy
// sets RenewBurst but no window.
const DefaultRenewWindow uint32 = 60

// DefaultPolicy matches the paper's 15-minute per-flow guidance with a
// 24-hour ceiling for receive-only (DNS-published) identifiers, and a
// renewal budget generous enough for every live flow of a busy host to
// roll over each minute without ever unthrottling identifier churn.
func DefaultPolicy() Policy {
	return Policy{
		DefaultLifetime: 15 * 60, MaxLifetime: 24 * 3600,
		RenewBurst: 64, RenewWindow: DefaultRenewWindow,
	}
}

// Clamp applies the policy to a requested lifetime.
func (p Policy) Clamp(requested uint32) uint32 {
	if requested == 0 {
		return p.DefaultLifetime
	}
	return min(requested, p.MaxLifetime)
}

// Service is the Management Service of one AS. It is safe for
// concurrent use; the paper parallelizes issuance across 4 processes
// and so do the benchmarks.
type Service struct {
	aid     ephid.AID
	sealer  *ephid.Sealer
	signer  *crypto.Signer
	db      *hostdb.DB
	policy  Policy
	aaEphID ephid.EphID
	now     func() int64

	// Issued counts successfully issued EphIDs.
	issued func()

	// renews shards the per-HID renewal rate-limit windows by HID. A
	// single mutex over a single map was fine for tens of hosts, but a
	// synchronized renewal storm at ISP scale (every host whose EphIDs
	// were issued in the same second renewing in the same tick) would
	// serialize all issuance workers on it; sharding keeps the budget
	// check per-HID-local, and each shard prunes its lapsed windows
	// opportunistically so host churn cannot grow the table without
	// bound.
	renews [renewShardCount]renewShard

	renewed     atomic.Uint64
	renewDenied atomic.Uint64
}

// renewShardCount is the renewal-window shard count (a power of two so
// the shard index is a mask, like hostdb).
const renewShardCount = 64

// renewPruneEvery is how many window insertions a shard accepts before
// sweeping lapsed windows. A lapsed window holds no budget information
// — re-insertion starts a fresh window — so sweeping is purely a
// memory bound, amortized O(1) per insertion.
const renewPruneEvery = 4096

// renewShard is one shard of the renewal-budget table.
type renewShard struct {
	mu sync.Mutex
	m  map[ephid.HID]*renewWindow
	// writes counts insertions since the last prune.
	writes int
}

// prune removes windows that lapsed before now. Called with mu held.
func (sh *renewShard) prune(now, window int64) {
	for hid, w := range sh.m {
		if now-w.start >= window {
			delete(sh.m, hid)
		}
	}
	sh.writes = 0
}

// renewWindow is one host's renewal budget accounting: renewals used
// since the window started.
type renewWindow struct {
	start int64
	used  int
}

// New creates the service. aaEphID is embedded in every certificate so
// peers know where to send shutoff requests.
func New(aid ephid.AID, sealer *ephid.Sealer, signer *crypto.Signer, db *hostdb.DB,
	policy Policy, aaEphID ephid.EphID, now func() int64) *Service {
	s := &Service{
		aid: aid, sealer: sealer, signer: signer, db: db,
		policy: policy, aaEphID: aaEphID, now: now, issued: func() {},
	}
	for i := range s.renews {
		s.renews[i].m = make(map[ephid.HID]*renewWindow)
	}
	return s
}

// SetIssuedHook installs a callback fired per successful issuance
// (metrics).
func (s *Service) SetIssuedHook(fn func()) { s.issued = fn }

// Renewed reports how many issuances went through the renewal path.
func (s *Service) Renewed() uint64 { return s.renewed.Load() }

// RenewDenied reports how many renewals the rate limiter rejected.
func (s *Service) RenewDenied() uint64 { return s.renewDenied.Load() }

// checkRenewal validates and charges a renewal: the predecessor EphID
// must decrypt under this AS's key to the same HID as the requesting
// control EphID (a host can only renew its own identifiers), and the
// host must have renewal budget left in the current window. The
// predecessor may already be expired — renewing an identifier that
// lapsed while its flow idled is exactly the recovery path.
func (s *Service) checkRenewal(hid ephid.HID, req *Request, now int64) error {
	pp, err := s.sealer.Open(req.Prev)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadEphID, err)
	}
	if pp.HID != hid {
		return ErrForeignPrev
	}
	if s.policy.RenewBurst <= 0 {
		return nil
	}
	window := int64(s.policy.RenewWindow)
	if window == 0 {
		window = int64(DefaultRenewWindow)
	}
	sh := &s.renews[uint32(hid)&(renewShardCount-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	w := sh.m[hid]
	if w == nil || now-w.start >= window {
		if w == nil {
			if sh.writes++; sh.writes >= renewPruneEvery {
				sh.prune(now, window)
			}
		}
		w = &renewWindow{start: now}
		sh.m[hid] = w
	}
	if w.used >= s.policy.RenewBurst {
		s.renewDenied.Add(1)
		return ErrRenewRateLimited
	}
	w.used++
	return nil
}

// RenewTracked reports how many per-HID renewal windows the service
// currently holds (lapsed windows linger until their shard's next
// prune). It exists for capacity observability: the population engine
// graphs it against the modeled host count.
func (s *Service) RenewTracked() int {
	n := 0
	for i := range s.renews {
		sh := &s.renews[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// HandleRequest implements Figure 3. srcEphID is the source EphID of
// the request packet (the host's control EphID) and ciphertext the
// encrypted request. It returns the encrypted certificate reply.
func (s *Service) HandleRequest(srcEphID ephid.EphID, ciphertext []byte) ([]byte, error) {
	now := s.now()

	// (HID, T1) = Dec(kA, EphID_ctrl); abort on forgery or expiry.
	p, err := s.sealer.Open(srcEphID)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadEphID, err)
	}
	if p.Expired(now) {
		return nil, ErrExpiredEphID
	}

	// HID must be registered and not revoked.
	encKey, err := s.db.EncKey(p.HID)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrUnknownHost, err)
	}

	// Decrypt and parse the request.
	aead, err := crypto.NewAEAD(encKey[:], 0)
	if err != nil {
		return nil, err
	}
	plain, err := aead.Open(nil, ciphertext, srcEphID[:])
	if err != nil {
		return nil, ErrDecryptFailed
	}
	req, err := DecodeRequest(plain)
	if err != nil {
		return nil, err
	}
	if req.Renewing() {
		if err := s.checkRenewal(p.HID, req, now); err != nil {
			// The requester is authenticated and its request well
			// formed, so the denial is answered, not dropped: the host
			// matches replies to requests FIFO, and a silent drop would
			// desynchronize every later reply on that host.
			return s.sealReply(encKey[:], srcEphID, statusOf(err), nil)
		}
	}

	c, err := s.Issue(p.HID, req)
	if err != nil {
		return nil, err
	}
	if req.Renewing() {
		s.renewed.Add(1)
	}

	// Encrypt the certificate so observers cannot link the new EphID
	// to the control EphID. Direction 1 separates the reply nonce
	// space from the host's request nonce space under the shared key.
	raw, err := c.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return s.sealReply(encKey[:], srcEphID, replyStatusOK, raw)
}

// Reply status codes, the first byte of the decrypted reply.
const (
	replyStatusOK          = 0
	replyStatusRateLimited = 1
	replyStatusForeignPrev = 2
)

// statusOf maps a denial error to its wire status. A predecessor that
// fails authentication reads the same as a foreign one: either way it
// is not an identifier this host may renew.
func statusOf(err error) byte {
	if errors.Is(err, ErrRenewRateLimited) {
		return replyStatusRateLimited
	}
	return replyStatusForeignPrev
}

// sealReply encrypts a status byte plus optional certificate under the
// host's kHA key, bound to the requesting control EphID.
func (s *Service) sealReply(encKey []byte, srcEphID ephid.EphID, status byte, raw []byte) ([]byte, error) {
	replyAEAD, err := crypto.NewAEAD(encKey, 1)
	if err != nil {
		return nil, err
	}
	plain := make([]byte, 0, 1+len(raw))
	plain = append(plain, status)
	plain = append(plain, raw...)
	return replyAEAD.Seal(nil, plain, srcEphID[:])
}

// Issue mints and certifies an EphID for an already-validated host.
// This is the core generation step measured in the paper's MS
// performance experiment (Section V-A3).
func (s *Service) Issue(hid ephid.HID, req *Request) (*cert.Cert, error) {
	exp := uint32(s.now()) + s.policy.Clamp(req.Lifetime)
	id := s.sealer.Mint(ephid.Payload{HID: hid, ExpTime: exp})
	c := &cert.Cert{
		Kind: req.Kind, EphID: id, ExpTime: exp,
		AID: s.aid, AAEphID: s.aaEphID,
		DHPub: req.DHPub, SigPub: req.SigPub,
	}
	c.Sign(s.signer)
	s.issued()
	return c, nil
}

// DecodeReply is the host-side decryption of the MS reply: it recovers
// the status byte and, on success, parses the certificate using the
// host's kHA encryption key. Denials come back as typed errors
// (ErrRenewRateLimited, ErrForeignPrev) so requesters can distinguish
// throttling from protocol failures.
func DecodeReply(encKey []byte, srcEphID ephid.EphID, reply []byte) (*cert.Cert, error) {
	aead, err := crypto.NewAEAD(encKey, 0)
	if err != nil {
		return nil, err
	}
	plain, err := aead.Open(nil, reply, srcEphID[:])
	if err != nil {
		return nil, fmt.Errorf("ms: reply decryption failed: %w", err)
	}
	if len(plain) < 1 {
		return nil, ErrBadRequest
	}
	switch plain[0] {
	case replyStatusOK:
	case replyStatusRateLimited:
		return nil, ErrRenewRateLimited
	case replyStatusForeignPrev:
		return nil, ErrForeignPrev
	default:
		return nil, fmt.Errorf("%w: reply status %d", ErrBadRequest, plain[0])
	}
	var c cert.Cert
	if err := c.UnmarshalBinary(plain[1:]); err != nil {
		return nil, err
	}
	return &c, nil
}

// EncodeRequest is the host-side encryption of a request under the
// host's kHA encryption key, bound to the control EphID it will be sent
// from.
func EncodeRequest(encKey []byte, srcEphID ephid.EphID, req *Request) ([]byte, error) {
	aead, err := crypto.NewAEAD(encKey, 0)
	if err != nil {
		return nil, err
	}
	return aead.Seal(nil, req.Encode(), srcEphID[:])
}
