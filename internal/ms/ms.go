// Package ms implements the EphID Management Service — the AS entity
// that issues ephemeral identifiers to hosts (paper Sections IV-C and
// V-A, Figures 3 and 6).
//
// The issuance protocol: the host sends an encrypted request (under the
// kHA key it shares with the AS) carrying a freshly generated ephemeral
// public key; the MS validates the host's control EphID, mints a new
// EphID, certifies the binding between the EphID and the host's key
// with a short-lived certificate, and returns the certificate encrypted.
// Both directions are encrypted so an observer inside the AS cannot
// link the issued EphIDs to the requesting control EphID
// (sender-flow unlinkability, Section IV-C).
package ms

import (
	"encoding/binary"
	"errors"
	"fmt"

	"apna/internal/cert"
	"apna/internal/crypto"
	"apna/internal/ephid"
	"apna/internal/hostdb"
)

// Errors returned by the service.
var (
	ErrBadEphID      = errors.New("ms: invalid source EphID")
	ErrExpiredEphID  = errors.New("ms: control EphID expired")
	ErrUnknownHost   = errors.New("ms: unknown or revoked HID")
	ErrBadRequest    = errors.New("ms: malformed request")
	ErrDecryptFailed = errors.New("ms: request decryption failed")
)

// Request is the plaintext interior of an EphID request message. The
// host generates the key pair for the EphID itself, because the keys
// will protect data the AS must not read (Section IV-C).
type Request struct {
	// Kind of EphID requested (data or receive-only; control EphIDs
	// come from the RS at bootstrap).
	Kind ephid.Kind
	// Lifetime is the requested validity in seconds; the MS clamps it
	// to its policy (Section VIII-G1 discusses letting hosts express
	// expiration-time choices).
	Lifetime uint32
	// DHPub is the X25519 public key to bind to the EphID.
	DHPub [crypto.X25519PublicKeySize]byte
	// SigPub is the Ed25519 public key to bind to the EphID.
	SigPub [crypto.SigningPublicKeySize]byte
}

// RequestSize is the encoded request size.
const RequestSize = 1 + 4 + crypto.X25519PublicKeySize + crypto.SigningPublicKeySize

// Encode serializes the request.
func (r *Request) Encode() []byte {
	buf := make([]byte, 0, RequestSize)
	buf = append(buf, byte(r.Kind))
	buf = binary.BigEndian.AppendUint32(buf, r.Lifetime)
	buf = append(buf, r.DHPub[:]...)
	buf = append(buf, r.SigPub[:]...)
	return buf
}

// DecodeRequest parses a request.
func DecodeRequest(data []byte) (*Request, error) {
	if len(data) != RequestSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadRequest, len(data))
	}
	var r Request
	r.Kind = ephid.Kind(data[0])
	r.Lifetime = binary.BigEndian.Uint32(data[1:])
	copy(r.DHPub[:], data[5:])
	copy(r.SigPub[:], data[5+crypto.X25519PublicKeySize:])
	return &r, nil
}

// Policy bounds issued EphID lifetimes. The paper suggests 15 minutes
// for per-flow EphIDs, since 98% of Internet flows last less than that
// (Section VIII-G1).
type Policy struct {
	// DefaultLifetime is used when the host requests 0.
	DefaultLifetime uint32
	// MaxLifetime caps requests.
	MaxLifetime uint32
}

// DefaultPolicy matches the paper's 15-minute per-flow guidance with a
// 24-hour ceiling for receive-only (DNS-published) identifiers.
func DefaultPolicy() Policy {
	return Policy{DefaultLifetime: 15 * 60, MaxLifetime: 24 * 3600}
}

// Clamp applies the policy to a requested lifetime.
func (p Policy) Clamp(requested uint32) uint32 {
	if requested == 0 {
		return p.DefaultLifetime
	}
	return min(requested, p.MaxLifetime)
}

// Service is the Management Service of one AS. It is safe for
// concurrent use; the paper parallelizes issuance across 4 processes
// and so do the benchmarks.
type Service struct {
	aid     ephid.AID
	sealer  *ephid.Sealer
	signer  *crypto.Signer
	db      *hostdb.DB
	policy  Policy
	aaEphID ephid.EphID
	now     func() int64

	// Issued counts successfully issued EphIDs.
	issued func()
}

// New creates the service. aaEphID is embedded in every certificate so
// peers know where to send shutoff requests.
func New(aid ephid.AID, sealer *ephid.Sealer, signer *crypto.Signer, db *hostdb.DB,
	policy Policy, aaEphID ephid.EphID, now func() int64) *Service {
	return &Service{
		aid: aid, sealer: sealer, signer: signer, db: db,
		policy: policy, aaEphID: aaEphID, now: now, issued: func() {},
	}
}

// SetIssuedHook installs a callback fired per successful issuance
// (metrics).
func (s *Service) SetIssuedHook(fn func()) { s.issued = fn }

// HandleRequest implements Figure 3. srcEphID is the source EphID of
// the request packet (the host's control EphID) and ciphertext the
// encrypted request. It returns the encrypted certificate reply.
func (s *Service) HandleRequest(srcEphID ephid.EphID, ciphertext []byte) ([]byte, error) {
	now := s.now()

	// (HID, T1) = Dec(kA, EphID_ctrl); abort on forgery or expiry.
	p, err := s.sealer.Open(srcEphID)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEphID, err)
	}
	if p.Expired(now) {
		return nil, ErrExpiredEphID
	}

	// HID must be registered and not revoked.
	encKey, err := s.db.EncKey(p.HID)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownHost, err)
	}

	// Decrypt and parse the request.
	aead, err := crypto.NewAEAD(encKey[:], 0)
	if err != nil {
		return nil, err
	}
	plain, err := aead.Open(nil, ciphertext, srcEphID[:])
	if err != nil {
		return nil, ErrDecryptFailed
	}
	req, err := DecodeRequest(plain)
	if err != nil {
		return nil, err
	}

	c, err := s.Issue(p.HID, req)
	if err != nil {
		return nil, err
	}

	// Encrypt the certificate so observers cannot link the new EphID
	// to the control EphID. Direction 1 separates the reply nonce
	// space from the host's request nonce space under the shared key.
	raw, err := c.MarshalBinary()
	if err != nil {
		return nil, err
	}
	replyAEAD, err := crypto.NewAEAD(encKey[:], 1)
	if err != nil {
		return nil, err
	}
	reply, err := replyAEAD.Seal(nil, raw, srcEphID[:])
	if err != nil {
		return nil, err
	}
	return reply, nil
}

// Issue mints and certifies an EphID for an already-validated host.
// This is the core generation step measured in the paper's MS
// performance experiment (Section V-A3).
func (s *Service) Issue(hid ephid.HID, req *Request) (*cert.Cert, error) {
	exp := uint32(s.now()) + s.policy.Clamp(req.Lifetime)
	id := s.sealer.Mint(ephid.Payload{HID: hid, ExpTime: exp})
	c := &cert.Cert{
		Kind: req.Kind, EphID: id, ExpTime: exp,
		AID: s.aid, AAEphID: s.aaEphID,
		DHPub: req.DHPub, SigPub: req.SigPub,
	}
	c.Sign(s.signer)
	s.issued()
	return c, nil
}

// DecodeReply is the host-side decryption of the MS reply: it recovers
// and parses the certificate using the host's kHA encryption key.
func DecodeReply(encKey []byte, srcEphID ephid.EphID, reply []byte) (*cert.Cert, error) {
	aead, err := crypto.NewAEAD(encKey, 0)
	if err != nil {
		return nil, err
	}
	plain, err := aead.Open(nil, reply, srcEphID[:])
	if err != nil {
		return nil, fmt.Errorf("ms: reply decryption failed: %w", err)
	}
	var c cert.Cert
	if err := c.UnmarshalBinary(plain); err != nil {
		return nil, err
	}
	return &c, nil
}

// EncodeRequest is the host-side encryption of a request under the
// host's kHA encryption key, bound to the control EphID it will be sent
// from.
func EncodeRequest(encKey []byte, srcEphID ephid.EphID, req *Request) ([]byte, error) {
	aead, err := crypto.NewAEAD(encKey, 0)
	if err != nil {
		return nil, err
	}
	return aead.Seal(nil, req.Encode(), srcEphID[:])
}
