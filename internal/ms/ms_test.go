package ms

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"apna/internal/cert"
	"apna/internal/crypto"
	"apna/internal/ephid"
	"apna/internal/hostdb"
)

type fixture struct {
	svc     *Service
	sealer  *ephid.Sealer
	signer  *crypto.Signer
	db      *hostdb.DB
	now     int64
	hid     ephid.HID
	keys    crypto.HostASKeys
	ctrlID  ephid.EphID
	aaEphID ephid.EphID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	secret, err := crypto.ASSecretFromBytes(bytes.Repeat([]byte{5}, crypto.SymKeySize))
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := ephid.NewSealer(secret)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := crypto.GenerateSigner()
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{sealer: sealer, signer: signer, db: hostdb.New(), now: 1_000_000, hid: 42}
	f.keys = crypto.DeriveHostASKeys([]byte("host42-shared"))
	f.db.Put(hostdb.Entry{HID: f.hid, Keys: f.keys, RegisteredAt: f.now})
	f.ctrlID = sealer.Mint(ephid.Payload{HID: f.hid, ExpTime: uint32(f.now) + 3600})
	f.aaEphID = sealer.Mint(ephid.Payload{HID: 1, ExpTime: uint32(f.now) + 86400})
	f.svc = New(64512, sealer, signer, f.db, DefaultPolicy(), f.aaEphID,
		func() int64 { return f.now })
	return f
}

func sampleRequest(t *testing.T) (*Request, *crypto.KeyPair, *crypto.Signer) {
	t.Helper()
	dh, err := crypto.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	sig, err := crypto.GenerateSigner()
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{Kind: ephid.KindData, Lifetime: 600}
	copy(req.DHPub[:], dh.PublicKey())
	copy(req.SigPub[:], sig.PublicKey())
	return req, dh, sig
}

func TestIssuanceEndToEnd(t *testing.T) {
	f := newFixture(t)
	req, _, _ := sampleRequest(t)

	issued := 0
	f.svc.SetIssuedHook(func() { issued++ })

	// Host side: encrypt request under kHA.
	ct, err := EncodeRequest(f.keys.Enc[:], f.ctrlID, req)
	if err != nil {
		t.Fatal(err)
	}
	// MS side.
	reply, err := f.svc.HandleRequest(f.ctrlID, ct)
	if err != nil {
		t.Fatal(err)
	}
	// Host side: decrypt certificate.
	c, err := DecodeReply(f.keys.Enc[:], f.ctrlID, reply)
	if err != nil {
		t.Fatal(err)
	}

	if err := c.Verify(f.signer.PublicKey(), f.now); err != nil {
		t.Errorf("cert does not verify: %v", err)
	}
	if c.Kind != ephid.KindData || c.AID != 64512 || c.AAEphID != f.aaEphID {
		t.Errorf("cert fields: %+v", c)
	}
	if c.DHPub != req.DHPub || c.SigPub != req.SigPub {
		t.Error("cert keys do not match request")
	}
	if c.ExpTime != uint32(f.now)+600 {
		t.Errorf("ExpTime = %d", c.ExpTime)
	}
	// The EphID decodes to the requesting host's HID.
	p, err := f.sealer.Open(c.EphID)
	if err != nil || p.HID != f.hid {
		t.Errorf("EphID payload: %+v, %v", p, err)
	}
	if issued != 1 {
		t.Errorf("issued hook fired %d times", issued)
	}
	// The new EphID differs from the control EphID (unlinkability).
	if c.EphID == f.ctrlID {
		t.Error("issued EphID equals control EphID")
	}
}

func TestHandleRequestForgedEphID(t *testing.T) {
	f := newFixture(t)
	var forged ephid.EphID
	forged[0] = 0xFF
	if _, err := f.svc.HandleRequest(forged, []byte("x")); !errors.Is(err, ErrBadEphID) {
		t.Errorf("err = %v", err)
	}
}

func TestHandleRequestExpiredControlEphID(t *testing.T) {
	f := newFixture(t)
	expired := f.sealer.Mint(ephid.Payload{HID: f.hid, ExpTime: uint32(f.now) - 1})
	if _, err := f.svc.HandleRequest(expired, []byte("x")); !errors.Is(err, ErrExpiredEphID) {
		t.Errorf("err = %v", err)
	}
}

func TestHandleRequestRevokedHost(t *testing.T) {
	f := newFixture(t)
	f.db.Revoke(f.hid)
	req, _, _ := sampleRequest(t)
	ct, _ := EncodeRequest(f.keys.Enc[:], f.ctrlID, req)
	if _, err := f.svc.HandleRequest(f.ctrlID, ct); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("err = %v", err)
	}
}

func TestHandleRequestUnknownHost(t *testing.T) {
	f := newFixture(t)
	ghost := f.sealer.Mint(ephid.Payload{HID: 999, ExpTime: uint32(f.now) + 100})
	if _, err := f.svc.HandleRequest(ghost, []byte("x")); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("err = %v", err)
	}
}

func TestHandleRequestGarbageCiphertext(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.HandleRequest(f.ctrlID, bytes.Repeat([]byte{7}, 64)); !errors.Is(err, ErrDecryptFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestHandleRequestWrongKeyCiphertext(t *testing.T) {
	// A request encrypted under another host's key must not decrypt —
	// this is what stops an observer forging requests for someone
	// else's control EphID.
	f := newFixture(t)
	req, _, _ := sampleRequest(t)
	otherKeys := crypto.DeriveHostASKeys([]byte("mallory"))
	ct, _ := EncodeRequest(otherKeys.Enc[:], f.ctrlID, req)
	if _, err := f.svc.HandleRequest(f.ctrlID, ct); !errors.Is(err, ErrDecryptFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestHandleRequestBoundToSourceEphID(t *testing.T) {
	// The request AEAD binds the control EphID as AAD: splicing a
	// ciphertext onto a different (valid) EphID of the same host must
	// fail.
	f := newFixture(t)
	req, _, _ := sampleRequest(t)
	ct, _ := EncodeRequest(f.keys.Enc[:], f.ctrlID, req)
	otherCtrl := f.sealer.Mint(ephid.Payload{HID: f.hid, ExpTime: uint32(f.now) + 3600})
	if _, err := f.svc.HandleRequest(otherCtrl, ct); !errors.Is(err, ErrDecryptFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestRequestCodec(t *testing.T) {
	req, _, _ := sampleRequest(t)
	got, err := DecodeRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *req {
		t.Errorf("roundtrip: %+v vs %+v", got, req)
	}
	if _, err := DecodeRequest(make([]byte, RequestSize-1)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("short: %v", err)
	}
	if _, err := DecodeRequest(make([]byte, RequestSize+1)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("long: %v", err)
	}
}

func TestPolicyClamp(t *testing.T) {
	p := Policy{DefaultLifetime: 900, MaxLifetime: 3600}
	if got := p.Clamp(0); got != 900 {
		t.Errorf("Clamp(0) = %d", got)
	}
	if got := p.Clamp(100); got != 100 {
		t.Errorf("Clamp(100) = %d", got)
	}
	if got := p.Clamp(100_000); got != 3600 {
		t.Errorf("Clamp(100000) = %d", got)
	}
	def := DefaultPolicy()
	if def.DefaultLifetime != 15*60 {
		t.Errorf("default lifetime %d", def.DefaultLifetime)
	}
}

func TestIssueDirect(t *testing.T) {
	f := newFixture(t)
	req, _, _ := sampleRequest(t)
	req.Lifetime = 0 // use default
	c, err := f.svc.Issue(f.hid, req)
	if err != nil {
		t.Fatal(err)
	}
	if c.ExpTime != uint32(f.now)+DefaultPolicy().DefaultLifetime {
		t.Errorf("ExpTime = %d", c.ExpTime)
	}
}

func TestDecodeReplyGarbage(t *testing.T) {
	f := newFixture(t)
	if _, err := DecodeReply(f.keys.Enc[:], f.ctrlID, []byte("junk-reply-bytes-too-short")); err == nil {
		t.Error("garbage reply accepted")
	}
}

// renewalExchange runs one renewal round trip against the fixture's
// service, returning the host-side decode result.
func (f *fixture) renewalExchange(t *testing.T, req *Request) (*cert.Cert, error) {
	t.Helper()
	ct, err := EncodeRequest(f.keys.Enc[:], f.ctrlID, req)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := f.svc.HandleRequest(f.ctrlID, ct)
	if err != nil {
		return nil, err
	}
	return DecodeReply(f.keys.Enc[:], f.ctrlID, reply)
}

func TestRenewalEndToEnd(t *testing.T) {
	f := newFixture(t)
	prev := f.sealer.Mint(ephid.Payload{HID: f.hid, ExpTime: uint32(f.now) + 30})
	req, _, _ := sampleRequest(t)
	req.Flags = ReqFlagRenew
	req.Prev = prev

	c, err := f.renewalExchange(t, req)
	if err != nil {
		t.Fatal(err)
	}
	if c.EphID == prev {
		t.Error("renewal returned the predecessor")
	}
	if p, err := f.sealer.Open(c.EphID); err != nil || p.HID != f.hid {
		t.Errorf("successor payload: %+v, %v", p, err)
	}
	if got := f.svc.Renewed(); got != 1 {
		t.Errorf("Renewed = %d", got)
	}
}

// TestRenewalOfExpiredPredecessor: renewing an identifier that lapsed
// while its flow idled is the recovery path and must succeed.
func TestRenewalOfExpiredPredecessor(t *testing.T) {
	f := newFixture(t)
	req, _, _ := sampleRequest(t)
	req.Flags = ReqFlagRenew
	req.Prev = f.sealer.Mint(ephid.Payload{HID: f.hid, ExpTime: uint32(f.now) - 100})
	if _, err := f.renewalExchange(t, req); err != nil {
		t.Fatalf("expired-predecessor renewal: %v", err)
	}
}

// TestRenewalForeignPredecessor: a host cannot renew another host's
// identifier; the denial comes back as a typed reply, not a silent
// drop (silent drops would desynchronize the host's FIFO reply
// matching).
func TestRenewalForeignPredecessor(t *testing.T) {
	f := newFixture(t)
	f.db.Put(hostdb.Entry{HID: 99, Keys: crypto.DeriveHostASKeys([]byte("other"))})
	req, _, _ := sampleRequest(t)
	req.Flags = ReqFlagRenew
	req.Prev = f.sealer.Mint(ephid.Payload{HID: 99, ExpTime: uint32(f.now) + 600})
	if _, err := f.renewalExchange(t, req); !errors.Is(err, ErrForeignPrev) {
		t.Errorf("foreign predecessor: %v", err)
	}
	if got := f.svc.Renewed(); got != 0 {
		t.Errorf("Renewed = %d after denial", got)
	}
}

// TestRenewalForgedPredecessor: a fabricated Prev fails the sealer's
// authentication. The requester itself IS authenticated (the request
// decrypted under its kHA), so the denial comes back as a typed reply
// — like every denial, because a silent drop would desynchronize the
// host's FIFO reply matching.
func TestRenewalForgedPredecessor(t *testing.T) {
	f := newFixture(t)
	req, _, _ := sampleRequest(t)
	req.Flags = ReqFlagRenew
	req.Prev = ephid.EphID{1, 2, 3}
	if _, err := f.renewalExchange(t, req); !errors.Is(err, ErrForeignPrev) {
		t.Errorf("forged predecessor: %v", err)
	}
}

func TestRenewalRateLimit(t *testing.T) {
	f := newFixture(t)
	f.svc.policy.RenewBurst = 3
	f.svc.policy.RenewWindow = 60

	renew := func() error {
		req, _, _ := sampleRequest(t)
		req.Flags = ReqFlagRenew
		req.Prev = f.sealer.Mint(ephid.Payload{HID: f.hid, ExpTime: uint32(f.now) + 600})
		_, err := f.renewalExchange(t, req)
		return err
	}
	for i := 0; i < 3; i++ {
		if err := renew(); err != nil {
			t.Fatalf("renewal %d: %v", i, err)
		}
	}
	if err := renew(); !errors.Is(err, ErrRenewRateLimited) {
		t.Fatalf("over budget: %v", err)
	}
	if got := f.svc.RenewDenied(); got != 1 {
		t.Errorf("RenewDenied = %d", got)
	}
	// The window rolls over and the budget refills.
	f.now += 61
	if err := renew(); err != nil {
		t.Errorf("after window rollover: %v", err)
	}
	// Plain issuance is never rate limited.
	req, _, _ := sampleRequest(t)
	ct, err := EncodeRequest(f.keys.Enc[:], f.ctrlID, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.HandleRequest(f.ctrlID, ct); err != nil {
		t.Errorf("plain issuance throttled: %v", err)
	}
}

func TestRenewalRateLimitDisabled(t *testing.T) {
	f := newFixture(t)
	f.svc.policy.RenewBurst = 0
	for i := 0; i < 50; i++ {
		req, _, _ := sampleRequest(t)
		req.Flags = ReqFlagRenew
		req.Prev = f.sealer.Mint(ephid.Payload{HID: f.hid, ExpTime: uint32(f.now) + 600})
		if _, err := f.renewalExchange(t, req); err != nil {
			t.Fatalf("renewal %d with limit disabled: %v", i, err)
		}
	}
}

func TestRequestCodecRenewal(t *testing.T) {
	req, _, _ := sampleRequest(t)
	req.Flags = ReqFlagRenew
	req.Prev = ephid.EphID{9, 8, 7}
	got, err := DecodeRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *req {
		t.Errorf("roundtrip: %+v vs %+v", got, req)
	}
	if !got.Renewing() {
		t.Error("renew flag lost")
	}
}

// TestRenewalStormPerHIDBudgets: N hosts all renewing in the same tick
// — the synchronized validity-window-edge storm the population engine
// generates — drain their per-HID budgets independently and refill
// them at the window rollover, and every over-budget request is
// answered with an encrypted status reply (never silently dropped:
// hosts match replies to requests FIFO, so a silent drop would
// desynchronize every later exchange on that host).
func TestRenewalStormPerHIDBudgets(t *testing.T) {
	f := newFixture(t)
	const hosts = 300 // spans several renewal shards
	const burst = 2
	f.svc.policy.RenewBurst = burst
	f.svc.policy.RenewWindow = 60

	type stormHost struct {
		hid  ephid.HID
		keys crypto.HostASKeys
		ctrl ephid.EphID
	}
	hs := make([]stormHost, hosts)
	entries := make([]hostdb.Entry, 0, hosts)
	for i := range hs {
		hid := ephid.HID(1000 + i)
		keys := crypto.DeriveHostASKeys([]byte{byte(i), byte(i >> 8), 0xA})
		hs[i] = stormHost{
			hid: hid, keys: keys,
			ctrl: f.sealer.Mint(ephid.Payload{HID: hid, ExpTime: uint32(f.now) + 3600}),
		}
		entries = append(entries, hostdb.Entry{HID: hid, Keys: keys, RegisteredAt: f.now})
	}
	f.db.PutBatch(entries)

	// One storm wave: every host fires burst+1 renewals at the same
	// virtual instant, from one goroutine per host (the concurrency the
	// sharded budget table exists for).
	storm := func() (granted, denied, silent int) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := range hs {
			wg.Add(1)
			go func(h stormHost) {
				defer wg.Done()
				g, d, s := 0, 0, 0
				for r := 0; r < burst+1; r++ {
					req, _, _ := sampleRequest(t)
					req.Flags = ReqFlagRenew
					req.Prev = f.sealer.Mint(ephid.Payload{HID: h.hid, ExpTime: uint32(f.now) + 30})
					ct, err := EncodeRequest(h.keys.Enc[:], h.ctrl, req)
					if err != nil {
						t.Error(err)
						return
					}
					reply, err := f.svc.HandleRequest(h.ctrl, ct)
					if err != nil {
						// A denial surfacing as a transport-level error is
						// exactly the silent drop the reply protocol forbids.
						s++
						continue
					}
					if _, err := DecodeReply(h.keys.Enc[:], h.ctrl, reply); err == nil {
						g++
					} else if errors.Is(err, ErrRenewRateLimited) {
						d++
					} else {
						t.Errorf("host %v: unexpected reply error %v", h.hid, err)
					}
				}
				mu.Lock()
				granted += g
				denied += d
				silent += s
				mu.Unlock()
			}(hs[i])
		}
		wg.Wait()
		return
	}

	granted, denied, silent := storm()
	if silent != 0 {
		t.Fatalf("%d renewals got no reply at all", silent)
	}
	if granted != hosts*burst {
		t.Errorf("granted = %d, want %d (budgets must be per-HID, not shared)", granted, hosts*burst)
	}
	if denied != hosts {
		t.Errorf("denied = %d, want %d (exactly the over-budget request per host)", denied, hosts)
	}
	if got := f.svc.RenewDenied(); got != uint64(hosts) {
		t.Errorf("RenewDenied = %d, want %d", got, hosts)
	}

	// The window rolls over: every budget refills in full.
	f.now += 61
	granted, denied, silent = storm()
	if silent != 0 || granted != hosts*burst || denied != hosts {
		t.Errorf("post-rollover storm: granted=%d denied=%d silent=%d, want %d/%d/0",
			granted, denied, silent, hosts*burst, hosts)
	}
}

// TestRenewalWindowPruning: lapsed renewal windows are swept once a
// shard sees renewPruneEvery insertions, so a churning population
// cannot grow the budget table without bound.
func TestRenewalWindowPruning(t *testing.T) {
	f := newFixture(t)
	f.svc.policy.RenewBurst = 4
	f.svc.policy.RenewWindow = 60

	// Insert windows for renewShardCount*renewPruneEvery distinct HIDs
	// via checkRenewal directly (the exchange path's cost is irrelevant
	// here), advancing the clock so earlier windows lapse.
	total := renewShardCount * renewPruneEvery
	for i := 0; i < total; i++ {
		hid := ephid.HID(10_000 + i)
		req := &Request{Flags: ReqFlagRenew,
			Prev: f.sealer.Mint(ephid.Payload{HID: hid, ExpTime: uint32(f.now) + 30})}
		if err := f.svc.checkRenewal(hid, req, f.now+int64(i)/100); err != nil {
			t.Fatal(err)
		}
	}
	// Every window inserted in the first sweep-eligible stretch has
	// lapsed by the end (clock advanced by total/100 >> window), so the
	// table must hold far fewer than every HID ever seen.
	if got := f.svc.RenewTracked(); got >= total {
		t.Errorf("RenewTracked = %d, want < %d (pruning never ran)", got, total)
	}
}
