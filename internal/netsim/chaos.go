package netsim

import "time"

// Chaos extensions to links. The base Link models a clean channel with
// an independent loss probability; adversarial conformance runs need the
// rest of the paper's threat model's network: variable latency, frame
// duplication, reordering and timed partitions. Every knob draws from
// the simulator's seeded RNG, so a chaotic run is exactly as
// reproducible as a clean one.

// ChaosConfig describes the fault behaviour of a link. The zero value
// is a clean link.
type ChaosConfig struct {
	// Loss is an extra per-frame drop probability in [0,1), applied
	// independently of the link's base loss.
	Loss float64
	// Jitter is the maximum extra one-way latency added to each frame,
	// drawn uniformly from [0, Jitter]. Because each frame draws its
	// own jitter, frames sent close together can arrive reordered.
	Jitter time.Duration
	// DupProb is the probability a frame is delivered twice; the copy
	// takes its own jitter draw.
	DupProb float64
	// ReorderProb is the probability a frame is held back by
	// ReorderDelay on top of its jitter, forcing reordering even
	// against widely spaced traffic.
	ReorderProb  float64
	ReorderDelay time.Duration
	// Partitions are virtual-time windows (since simulation start)
	// during which the link drops every frame — the timed-partition
	// fault. Intervals are checked at send time, not via scheduled
	// events, so a partitioned link never keeps the event queue alive.
	Partitions []Interval
}

// Interval is a half-open window [From, Until) of virtual time.
type Interval struct {
	From, Until time.Duration
}

// Contains reports whether t falls inside the interval.
func (i Interval) Contains(t time.Duration) bool {
	return t >= i.From && t < i.Until
}

// Enabled reports whether any chaos knob is set.
func (c *ChaosConfig) Enabled() bool {
	return c.Loss > 0 || c.Jitter > 0 || c.DupProb > 0 ||
		c.ReorderProb > 0 || len(c.Partitions) > 0
}

// partitioned reports whether the link is inside a partition window.
func (c *ChaosConfig) partitioned(now time.Duration) bool {
	for _, iv := range c.Partitions {
		if iv.Contains(now) {
			return true
		}
	}
	return false
}

// extraDelay draws the chaotic latency additions for one frame copy.
// Draws route through the simulator's fault helpers so capture and
// replay see every decision.
func (c *ChaosConfig) extraDelay(s *Simulator, link string) (d time.Duration, reordered bool) {
	if c.Jitter > 0 {
		d += s.faultJitter(link, c.Jitter)
	}
	if c.ReorderProb > 0 && s.faultChance(link, FaultReorder, c.ReorderProb) {
		d += c.ReorderDelay
		reordered = true
	}
	return d, reordered
}

// SetChaos installs the chaos configuration on the link. Call it during
// setup; the simulator is single-threaded, so mid-run reconfiguration
// from an event callback is also safe.
func (l *Link) SetChaos(c ChaosConfig) { l.chaos = c }

// Chaos returns the link's current chaos configuration.
func (l *Link) Chaos() ChaosConfig { return l.chaos }

// Partition schedules a timed partition: the link drops every frame
// sent in [from, until) of virtual time.
func (l *Link) Partition(from, until time.Duration) {
	l.chaos.Partitions = append(l.chaos.Partitions, Interval{From: from, Until: until})
}

// AddTap installs a frame observer invoked for every frame that enters
// the link (after loss and partition drops, before delivery) — the
// capture point an on-path adversary uses. Taps accumulate: each one
// receives its own copy of the frame and the sending port, and may
// retain the slice, so two wiretaps on the same link both capture.
func (l *Link) AddTap(fn func(frame []byte, from *Port)) { l.taps = append(l.taps, fn) }
