package netsim

import (
	"testing"
	"time"
)

// collector records delivered frames with their arrival times.
type collector struct {
	sim    *Simulator
	frames [][]byte
	times  []time.Duration
}

func (c *collector) HandleFrame(frame []byte, _ *Port) {
	c.frames = append(c.frames, frame)
	c.times = append(c.times, c.sim.Now())
}

func chaosPair(t *testing.T, seed int64, latency time.Duration, cfg ChaosConfig) (*Simulator, *Link, *collector) {
	t.Helper()
	sim := New(seed)
	l := sim.NewLink("chaos", latency, 0)
	l.SetChaos(cfg)
	c := &collector{sim: sim}
	l.A().Attach(HandlerFunc(func([]byte, *Port) {}), "src")
	l.B().Attach(c, "dst")
	return sim, l, c
}

func TestChaosJitterBoundsAndReordering(t *testing.T) {
	const latency = 10 * time.Millisecond
	const jitter = 8 * time.Millisecond
	sim, l, c := chaosPair(t, 7, latency, ChaosConfig{Jitter: jitter})
	const n = 200
	for i := 0; i < n; i++ {
		l.A().Send([]byte{byte(i)})
	}
	sim.Run(1 << 20)
	if len(c.frames) != n {
		t.Fatalf("delivered %d of %d", len(c.frames), n)
	}
	reordered := false
	for i, at := range c.times {
		if at < latency || at > latency+jitter {
			t.Fatalf("frame %d arrived at %v outside [%v, %v]", i, at, latency, latency+jitter)
		}
		if c.frames[i][0] != byte(i) {
			reordered = true
		}
	}
	// All frames left at t=0 with independent jitter draws; ties are
	// broken by schedule order, but 200 draws over 8ms virtually
	// guarantee at least one inversion.
	if !reordered {
		t.Error("jitter produced no reordering across 200 frames")
	}
}

func TestChaosDuplication(t *testing.T) {
	sim, l, c := chaosPair(t, 1, time.Millisecond, ChaosConfig{DupProb: 1})
	const n = 50
	for i := 0; i < n; i++ {
		l.A().Send([]byte{byte(i)})
	}
	sim.Run(1 << 20)
	if len(c.frames) != 2*n {
		t.Fatalf("delivered %d, want %d (every frame duplicated)", len(c.frames), 2*n)
	}
	if got := l.Stats().Duplicated; got != n {
		t.Errorf("Duplicated = %d, want %d", got, n)
	}
	if got := l.Stats().Frames; got != n {
		t.Errorf("Frames = %d, want %d (duplicates are not offered frames)", got, n)
	}
}

func TestChaosReorderDelay(t *testing.T) {
	// ReorderProb 1 holds every frame back by the reorder delay; the
	// arrival time proves the path was taken.
	const latency, hold = time.Millisecond, 5 * time.Millisecond
	sim, l, c := chaosPair(t, 1, latency, ChaosConfig{ReorderProb: 1, ReorderDelay: hold})
	l.A().Send([]byte{1})
	sim.Run(1 << 10)
	if len(c.times) != 1 || c.times[0] != latency+hold {
		t.Fatalf("arrival %v, want %v", c.times, latency+hold)
	}
	if l.Stats().Reordered != 1 {
		t.Errorf("Reordered = %d, want 1", l.Stats().Reordered)
	}
}

func TestChaosTimedPartition(t *testing.T) {
	sim, l, c := chaosPair(t, 1, time.Millisecond, ChaosConfig{})
	l.Partition(10*time.Millisecond, 20*time.Millisecond)

	send := func(at time.Duration, b byte) {
		sim.Schedule(at, func() { l.A().Send([]byte{b}) })
	}
	send(5*time.Millisecond, 1)  // before: delivered
	send(15*time.Millisecond, 2) // inside: dropped
	send(25*time.Millisecond, 3) // after: delivered
	sim.Run(1 << 10)

	if len(c.frames) != 2 || c.frames[0][0] != 1 || c.frames[1][0] != 3 {
		t.Fatalf("delivered %v, want frames 1 and 3", c.frames)
	}
	st := l.Stats()
	if st.PartitionDrops != 1 || st.Dropped != 1 {
		t.Errorf("stats = %+v, want 1 partition drop", st)
	}
}

func TestChaosExtraLossIndependentOfBaseLoss(t *testing.T) {
	sim, l, c := chaosPair(t, 3, time.Millisecond, ChaosConfig{Loss: 0.5})
	const n = 400
	for i := 0; i < n; i++ {
		l.A().Send([]byte{byte(i)})
	}
	sim.Run(1 << 20)
	st := l.Stats()
	if st.Dropped == 0 || len(c.frames) == 0 {
		t.Fatalf("chaos loss 0.5: %d delivered, %d dropped — want both nonzero", len(c.frames), st.Dropped)
	}
	if int(st.Frames)+int(st.Dropped) != n {
		t.Errorf("Frames %d + Dropped %d != %d", st.Frames, st.Dropped, n)
	}
}

func TestChaosTapCapturesCopies(t *testing.T) {
	sim, l, c := chaosPair(t, 1, time.Millisecond, ChaosConfig{})
	var captured [][]byte
	l.AddTap(func(frame []byte, from *Port) {
		if from != l.A() {
			t.Errorf("tap saw sender %v, want port A", from.Label())
		}
		captured = append(captured, frame)
	})
	l.A().Send([]byte{42})
	if len(captured) != 1 {
		t.Fatalf("captured %d frames at send time, want 1", len(captured))
	}
	captured[0][0] = 99 // the tap's copy must not alias the delivery
	sim.Run(1 << 10)
	if len(c.frames) != 1 || c.frames[0][0] != 42 {
		t.Fatalf("delivered %v, want untainted frame 42", c.frames)
	}
}

func TestChaosTapsAccumulate(t *testing.T) {
	// Two wiretaps on the same link (two adversaries sharing a path)
	// must both capture: installing the second cannot displace the
	// first.
	_, l, _ := chaosPair(t, 1, time.Millisecond, ChaosConfig{})
	var first, second int
	l.AddTap(func([]byte, *Port) { first++ })
	l.AddTap(func([]byte, *Port) { second++ })
	l.A().Send([]byte{1})
	l.B().Send([]byte{2})
	if first != 2 || second != 2 {
		t.Errorf("taps saw %d/%d frames, want 2/2", first, second)
	}
}

func TestChaosDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]byte, LinkStats) {
		sim, l, c := chaosPair(t, 11, time.Millisecond, ChaosConfig{
			Loss: 0.2, Jitter: 3 * time.Millisecond, DupProb: 0.3,
			ReorderProb: 0.2, ReorderDelay: 2 * time.Millisecond,
		})
		for i := 0; i < 100; i++ {
			l.A().Send([]byte{byte(i)})
		}
		sim.Run(1 << 20)
		var order []byte
		for _, f := range c.frames {
			order = append(order, f[0])
		}
		return order, l.Stats()
	}
	o1, s1 := run()
	o2, s2 := run()
	if string(o1) != string(o2) || s1 != s2 {
		t.Error("same seed produced different chaotic timelines")
	}
}

func TestChaosConfigEnabled(t *testing.T) {
	var c ChaosConfig
	if c.Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, cfg := range []ChaosConfig{
		{Loss: 0.1}, {Jitter: time.Millisecond}, {DupProb: 0.1},
		{ReorderProb: 0.1}, {Partitions: []Interval{{0, time.Second}}},
	} {
		if !cfg.Enabled() {
			t.Errorf("%+v reports disabled", cfg)
		}
	}
}
