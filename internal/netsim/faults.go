package netsim

import "time"

// Fault capture and replay. Every chaotic decision a link makes — loss
// draws, duplication draws, jitter draws, reorder hold-backs, partition
// drops — funnels through the simulator helpers below. In capture mode
// each decision is appended to a FaultTrace as a seq-stamped FaultEvent,
// producing a complete, replayable fault schedule for the run. In replay
// mode the recorded outcomes are authoritative: each draw site still
// consumes its RNG draw (so the pseudo-random stream stays aligned for
// every other consumer of Rand(), e.g. the adversary package), then
// substitutes the recorded value. A run replayed against its own
// schedule is therefore bit-exact, and a hand-edited schedule bends the
// network without touching any code.

// Fault kinds, one per decision site.
const (
	// FaultPartition records a deterministic partition drop (no RNG
	// draw is consumed).
	FaultPartition = "partition"
	// FaultLoss records the link's base loss draw.
	FaultLoss = "loss"
	// FaultChaosLoss records the chaos-config loss draw.
	FaultChaosLoss = "chaos-loss"
	// FaultDup records the duplication draw.
	FaultDup = "dup"
	// FaultJitter records the per-copy jitter draw; Delay carries the
	// drawn extra latency.
	FaultJitter = "jitter"
	// FaultReorder records the reorder hold-back draw.
	FaultReorder = "reorder"
)

// FaultEvent is one recorded chaos decision. Seq orders events within a
// run (1-based); At is the virtual time of the decision in nanoseconds.
// Chance kinds use Hit; FaultJitter uses Delay (nanoseconds).
type FaultEvent struct {
	Seq   uint64 `json:"seq"`
	At    int64  `json:"at_ns"`
	Link  string `json:"link"`
	Kind  string `json:"kind"`
	Hit   bool   `json:"hit,omitempty"`
	Delay int64  `json:"delay_ns,omitempty"`
}

// FaultTrace accumulates the fault schedule of a capturing run. The
// slice is live: it grows as the simulation executes.
type FaultTrace struct {
	Events []FaultEvent
}

// ReplayStats reports how a replayed schedule aligned with the run.
//
//   - Consumed counts schedule events matched to decision sites.
//   - Diverged counts sites where the fresh RNG draw disagreed with the
//     recorded outcome (expected to be zero when replaying an unedited
//     schedule with the original seed; nonzero means the schedule was
//     edited, and the recorded value won).
//   - Mismatched counts sites whose link/kind did not match the next
//     schedule event; the first mismatch desynchronizes replay and all
//     later sites fall back to live draws.
//   - Underrun counts sites reached after the schedule was exhausted.
//   - Leftover is how many schedule events were never consumed.
type ReplayStats struct {
	Consumed   int    `json:"consumed"`
	Diverged   int    `json:"diverged"`
	Mismatched int    `json:"mismatched"`
	Underrun   int    `json:"underrun"`
	Leftover   int    `json:"leftover"`
	Desynced   bool   `json:"desynced"`
	FirstError string `json:"first_error,omitempty"`
}

type faultReplay struct {
	events []FaultEvent
	next   int
	stats  ReplayStats
}

// CaptureFaults starts recording every chaos decision into the returned
// trace, replacing any previous capture. Replay mode, if active, is
// cleared: a simulator either records or replays, never both.
func (s *Simulator) CaptureFaults() *FaultTrace {
	t := &FaultTrace{}
	s.faultCap = t
	s.faultReplay = nil
	return t
}

// ReplayFaults installs a recorded fault schedule: subsequent chaos
// decisions consume their RNG draws (keeping the stream aligned for
// other Rand() consumers) but take the recorded outcomes. Capture mode,
// if active, is cleared.
func (s *Simulator) ReplayFaults(events []FaultEvent) {
	s.faultReplay = &faultReplay{events: events}
	s.faultCap = nil
}

// FaultReplayStats reports the alignment of the active (or finished)
// replay. The zero value is returned when ReplayFaults was never called.
func (s *Simulator) FaultReplayStats() ReplayStats {
	r := s.faultReplay
	if r == nil {
		return ReplayStats{}
	}
	st := r.stats
	st.Leftover = len(r.events) - r.next
	return st
}

// faultChance draws one chance decision (probability p) for a link
// fault, recording or replaying it as configured. The RNG draw always
// happens first so capture, replay and plain runs consume identical
// streams.
func (s *Simulator) faultChance(link, kind string, p float64) bool {
	hit := s.rng.Float64() < p
	if r := s.faultReplay; r != nil {
		rec, ok := r.take(link, kind)
		if !ok {
			return hit
		}
		if rec.Hit != hit {
			r.stats.Diverged++
		}
		return rec.Hit
	}
	s.record(FaultEvent{Link: link, Kind: kind, Hit: hit})
	return hit
}

// faultJitter draws the uniform [0, max] jitter for one frame copy,
// recording or replaying the drawn delay.
func (s *Simulator) faultJitter(link string, max time.Duration) time.Duration {
	d := time.Duration(s.rng.Int63n(int64(max) + 1))
	if r := s.faultReplay; r != nil {
		rec, ok := r.take(link, FaultJitter)
		if !ok {
			return d
		}
		if rec.Delay != int64(d) {
			r.stats.Diverged++
		}
		return time.Duration(rec.Delay)
	}
	s.record(FaultEvent{Link: link, Kind: FaultJitter, Delay: int64(d)})
	return d
}

// faultMark records a deterministic (draw-free) fault decision — the
// partition drop. In replay mode the matching schedule event is
// consumed so alignment checking covers partitions too.
func (s *Simulator) faultMark(link, kind string) {
	if r := s.faultReplay; r != nil {
		r.take(link, kind)
		return
	}
	s.record(FaultEvent{Link: link, Kind: kind, Hit: true})
}

// record appends ev to the capture trace, if capturing.
func (s *Simulator) record(ev FaultEvent) {
	if s.faultCap == nil {
		return
	}
	s.faultSeq++
	ev.Seq = s.faultSeq
	ev.At = int64(s.now)
	s.faultCap.Events = append(s.faultCap.Events, ev)
}

// take consumes the next schedule event, verifying it matches the
// decision site. A mismatch desynchronizes the replay permanently:
// trusting later events after an alignment failure would corrupt the
// run worse than falling back to live draws.
func (r *faultReplay) take(link, kind string) (FaultEvent, bool) {
	if r.stats.Desynced {
		return FaultEvent{}, false
	}
	if r.next >= len(r.events) {
		r.stats.Underrun++
		return FaultEvent{}, false
	}
	ev := r.events[r.next]
	if ev.Link != link || ev.Kind != kind {
		r.stats.Mismatched++
		r.stats.Desynced = true
		if r.stats.FirstError == "" {
			r.stats.FirstError = "replay desync at seq " + itoa(ev.Seq) +
				": schedule has " + ev.Link + "/" + ev.Kind +
				", run reached " + link + "/" + kind
		}
		return FaultEvent{}, false
	}
	r.next++
	r.stats.Consumed++
	return ev, true
}

// itoa formats a uint64 without pulling strconv into the hot path
// imports (faults only fire on chaotic links, but keep it cheap).
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
