package netsim

import (
	"fmt"
	"testing"
	"time"
)

// chaoticRun drives traffic over one chaotic link and returns the
// delivery log ("t=<ns> len=<n>" lines) plus the link stats.
func chaoticRun(t *testing.T, sim *Simulator, frames int) ([]string, LinkStats) {
	t.Helper()
	link := sim.NewLink("l0", time.Millisecond, 0.05)
	link.SetChaos(ChaosConfig{
		Loss: 0.1, Jitter: 500 * time.Microsecond,
		DupProb: 0.2, ReorderProb: 0.3, ReorderDelay: 2 * time.Millisecond,
		Partitions: []Interval{{From: 3 * time.Millisecond, Until: 5 * time.Millisecond}},
	})
	var log []string
	link.B().Attach(HandlerFunc(func(frame []byte, from *Port) {
		log = append(log, fmt.Sprintf("t=%d len=%d", sim.Now(), len(frame)))
	}), "sink")
	for i := 0; i < frames; i++ {
		i := i
		sim.Schedule(time.Duration(i)*200*time.Microsecond, func() {
			link.A().Send(make([]byte, 10+i))
		})
	}
	sim.Run(1 << 20)
	return log, link.Stats()
}

func TestFaultCaptureReplayBitExact(t *testing.T) {
	const frames = 200

	rec := New(42)
	trace := rec.CaptureFaults()
	wantLog, wantStats := chaoticRun(t, rec, frames)
	if len(trace.Events) == 0 {
		t.Fatal("capture recorded no fault events")
	}
	// Seq must be strictly increasing and At non-decreasing.
	for i := 1; i < len(trace.Events); i++ {
		if trace.Events[i].Seq <= trace.Events[i-1].Seq {
			t.Fatalf("event %d: seq %d not above %d", i, trace.Events[i].Seq, trace.Events[i-1].Seq)
		}
		if trace.Events[i].At < trace.Events[i-1].At {
			t.Fatalf("event %d: time went backwards", i)
		}
	}

	rep := New(42)
	rep.ReplayFaults(trace.Events)
	gotLog, gotStats := chaoticRun(t, rep, frames)
	st := rep.FaultReplayStats()
	if st.Desynced || st.Mismatched != 0 {
		t.Fatalf("replay desynced: %+v", st)
	}
	if st.Diverged != 0 {
		t.Fatalf("replay of unedited schedule diverged %d times", st.Diverged)
	}
	if st.Leftover != 0 || st.Underrun != 0 {
		t.Fatalf("replay did not consume schedule exactly: %+v", st)
	}
	if st.Consumed != len(trace.Events) {
		t.Fatalf("consumed %d of %d events", st.Consumed, len(trace.Events))
	}
	if gotStats != wantStats {
		t.Fatalf("link stats differ: capture %+v replay %+v", wantStats, gotStats)
	}
	if len(gotLog) != len(wantLog) {
		t.Fatalf("delivery count differs: %d vs %d", len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		if gotLog[i] != wantLog[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, gotLog[i], wantLog[i])
		}
	}
}

// A replay under a different seed must still reproduce the recorded
// network behaviour (the schedule is authoritative), reporting the
// disagreements as divergences rather than changing the outcome.
func TestFaultReplayOverridesRNG(t *testing.T) {
	const frames = 200
	rec := New(1)
	trace := rec.CaptureFaults()
	wantLog, wantStats := chaoticRun(t, rec, frames)

	rep := New(99) // different seed: live draws disagree with the schedule
	rep.ReplayFaults(trace.Events)
	gotLog, gotStats := chaoticRun(t, rep, frames)
	st := rep.FaultReplayStats()
	if st.Desynced {
		t.Fatalf("replay desynced: %+v", st)
	}
	if st.Diverged == 0 {
		t.Fatal("expected divergences when replaying under a different seed")
	}
	if gotStats != wantStats {
		t.Fatalf("link stats differ: capture %+v replay %+v", wantStats, gotStats)
	}
	if len(gotLog) != len(wantLog) {
		t.Fatalf("delivery count differs: %d vs %d", len(gotLog), len(wantLog))
	}
	for i := range wantLog {
		if gotLog[i] != wantLog[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, gotLog[i], wantLog[i])
		}
	}
}

// Replay must keep the simulator's RNG stream aligned for consumers
// outside the chaos layer: each fault site burns its draw even though
// the recorded outcome wins.
func TestFaultReplayPreservesRNGStream(t *testing.T) {
	drain := func(sim *Simulator) []int64 {
		link := sim.NewLink("l0", time.Millisecond, 0.5)
		link.B().Attach(HandlerFunc(func([]byte, *Port) {}), "sink")
		var draws []int64
		for i := 0; i < 50; i++ {
			link.A().Send([]byte("x"))
			draws = append(draws, sim.Rand().Int63()) // an unrelated consumer
		}
		return draws
	}

	rec := New(7)
	trace := rec.CaptureFaults()
	want := drain(rec)

	rep := New(7)
	rep.ReplayFaults(trace.Events)
	got := drain(rep)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("external RNG draw %d shifted under replay: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestFaultReplayDesyncFallsBack(t *testing.T) {
	rec := New(3)
	trace := rec.CaptureFaults()
	chaoticRun(t, rec, 50)
	if len(trace.Events) < 2 {
		t.Fatal("need events to corrupt")
	}
	// Corrupt the first event's kind so the replay desyncs immediately.
	bad := append([]FaultEvent(nil), trace.Events...)
	bad[0].Kind = "nonsense"

	rep := New(3)
	rep.ReplayFaults(bad)
	log, _ := chaoticRun(t, rep, 50)
	st := rep.FaultReplayStats()
	if !st.Desynced || st.Mismatched == 0 {
		t.Fatalf("expected desync, got %+v", st)
	}
	if st.FirstError == "" {
		t.Fatal("desync did not record a first error")
	}
	// Fallback draws come from the same seed, so the run still matches
	// the original capture.
	base := New(3)
	wantLog, _ := chaoticRun(t, base, 50)
	if len(log) != len(wantLog) {
		t.Fatalf("fallback run diverged from seeded run: %d vs %d deliveries", len(log), len(wantLog))
	}
}

func TestFaultCaptureCleanLinkRecordsNothing(t *testing.T) {
	sim := New(5)
	trace := sim.CaptureFaults()
	link := sim.NewLink("clean", time.Millisecond, 0)
	link.B().Attach(HandlerFunc(func([]byte, *Port) {}), "sink")
	for i := 0; i < 100; i++ {
		link.A().Send([]byte("y"))
	}
	sim.Run(1 << 20)
	if len(trace.Events) != 0 {
		t.Fatalf("clean link recorded %d fault events", len(trace.Events))
	}
}
