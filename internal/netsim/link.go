package netsim

import (
	"fmt"
	"time"
)

// Handler consumes frames arriving at a node. from identifies the port
// the frame arrived on, letting routers distinguish interfaces.
type Handler interface {
	HandleFrame(frame []byte, from *Port)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(frame []byte, from *Port)

// HandleFrame implements Handler.
func (f HandlerFunc) HandleFrame(frame []byte, from *Port) { f(frame, from) }

// Link is a bidirectional point-to-point link between two ports, with a
// one-way latency and an independent loss probability per frame.
// Optional chaos behaviour (jitter, duplication, reordering, timed
// partitions) is configured with SetChaos, and frame taps for on-path
// capture with AddTap.
type Link struct {
	sim     *Simulator
	latency time.Duration
	loss    float64
	name    string
	a, b    Port

	chaos ChaosConfig
	taps  []func(frame []byte, from *Port)

	stats LinkStats
}

// LinkStats counts traffic over a link (both directions). Dropped
// includes partition drops; Duplicated and Reordered count the extra
// copies and held-back frames the chaos configuration introduced.
type LinkStats struct {
	Frames         uint64
	Bytes          uint64
	Dropped        uint64
	PartitionDrops uint64
	Duplicated     uint64
	Reordered      uint64
}

// NewLink creates a link in the simulator with the given one-way latency
// and loss probability in [0,1).
func (s *Simulator) NewLink(name string, latency time.Duration, loss float64) *Link {
	l := &Link{sim: s, latency: latency, loss: loss, name: name}
	l.a = Port{link: l, peer: &l.b}
	l.b = Port{link: l, peer: &l.a}
	return l
}

// A returns the first port of the link.
func (l *Link) A() *Port { return &l.a }

// B returns the second port of the link.
func (l *Link) B() *Port { return &l.b }

// Latency returns the one-way latency.
func (l *Link) Latency() time.Duration { return l.latency }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// String names the link.
func (l *Link) String() string { return fmt.Sprintf("link(%s)", l.name) }

// Port is one end of a link. Attach binds it to a node; Send transmits
// toward the opposite end.
type Port struct {
	link  *Link
	peer  *Port
	owner Handler
	label string
}

// Attach binds the port to its owning node.
func (p *Port) Attach(owner Handler, label string) {
	p.owner = owner
	p.label = label
}

// Owner returns the attached handler (nil if unattached).
func (p *Port) Owner() Handler { return p.owner }

// Label returns the attachment label (for diagnostics).
func (p *Port) Label() string { return p.label }

// Link returns the port's link.
func (p *Port) Link() *Link { return p.link }

// Send transmits a frame to the opposite port after the link latency
// plus any chaotic delay. The frame is copied at send time: simulated
// nodes may reuse buffers, and real links serialize bits, not aliases.
func (p *Port) Send(frame []byte) {
	l := p.link
	if l.chaos.partitioned(l.sim.now) {
		l.sim.faultMark(l.name, FaultPartition)
		l.stats.Dropped++
		l.stats.PartitionDrops++
		return
	}
	if l.loss > 0 && l.sim.faultChance(l.name, FaultLoss, l.loss) {
		l.stats.Dropped++
		return
	}
	if l.chaos.Loss > 0 && l.sim.faultChance(l.name, FaultChaosLoss, l.chaos.Loss) {
		l.stats.Dropped++
		return
	}
	l.stats.Frames++
	l.stats.Bytes += uint64(len(frame))
	for _, tap := range l.taps {
		tap(append([]byte(nil), frame...), p)
	}
	p.deliverCopy(frame)
	if l.chaos.DupProb > 0 && l.sim.faultChance(l.name, FaultDup, l.chaos.DupProb) {
		l.stats.Duplicated++
		p.deliverCopy(frame)
	}
}

// deliverCopy schedules one delivery of frame at the link latency plus
// a fresh chaotic-delay draw; each copy jitters independently, so
// duplicates can overtake originals.
func (p *Port) deliverCopy(frame []byte) {
	l := p.link
	extra, reordered := l.chaos.extraDelay(l.sim, l.name)
	if reordered {
		l.stats.Reordered++
	}
	buf := append([]byte(nil), frame...)
	dst := p.peer
	l.sim.Schedule(l.latency+extra, func() {
		if dst.owner != nil {
			dst.owner.HandleFrame(buf, dst)
		}
	})
}
