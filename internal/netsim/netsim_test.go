package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"apna/internal/ephid"
)

func TestSimulatorOrdersEvents(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if n := s.Run(100); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestSimulatorFIFOAtSameTime(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	s.Schedule(time.Millisecond, func() {
		s.Schedule(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run(100)
	if len(fired) != 1 || fired[0] != 2*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestSimulatorNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("no panic for negative delay")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestSimulatorRunBudget(t *testing.T) {
	s := New(1)
	var bounce func()
	bounce = func() { s.Schedule(time.Microsecond, bounce) }
	s.Schedule(0, bounce)
	if n := s.Run(50); n != 50 {
		t.Errorf("budget run executed %d", n)
	}
	if s.Pending() == 0 {
		t.Error("livelock drained unexpectedly")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var count int
	for i := 1; i <= 10; i++ {
		s.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(5 * time.Second)
	if count != 5 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	// RunUntil advances the clock even with no events.
	s.RunUntil(20 * time.Second)
	if s.Now() != 20*time.Second || count != 10 {
		t.Errorf("Now = %v, count = %d", s.Now(), count)
	}
}

func TestNowUnix(t *testing.T) {
	s := New(1)
	s.SetEpoch(1000)
	s.Schedule(90*time.Second, func() {})
	s.Run(10)
	if got := s.NowUnix(); got != 1090 {
		t.Errorf("NowUnix = %d", got)
	}
}

func TestLinkDeliversWithLatency(t *testing.T) {
	s := New(1)
	l := s.NewLink("ab", 25*time.Millisecond, 0)
	var arrived time.Duration
	var got []byte
	l.B().Attach(HandlerFunc(func(frame []byte, from *Port) {
		arrived = s.Now()
		got = frame
	}), "b")
	l.A().Attach(HandlerFunc(func([]byte, *Port) {}), "a")

	l.A().Send([]byte("hello"))
	s.Run(10)
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if arrived != 25*time.Millisecond {
		t.Errorf("arrived at %v", arrived)
	}
	if st := l.Stats(); st.Frames != 1 || st.Bytes != 5 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkCopiesFrames(t *testing.T) {
	s := New(1)
	l := s.NewLink("ab", 0, 0)
	var got []byte
	l.B().Attach(HandlerFunc(func(frame []byte, from *Port) { got = frame }), "b")
	buf := []byte("mutate-me")
	l.A().Send(buf)
	buf[0] = 'X'
	s.Run(10)
	if string(got) != "mutate-me" {
		t.Errorf("frame aliased sender buffer: %q", got)
	}
}

func TestLinkBidirectional(t *testing.T) {
	s := New(1)
	l := s.NewLink("ab", time.Millisecond, 0)
	var aGot, bGot string
	l.A().Attach(HandlerFunc(func(f []byte, _ *Port) { aGot = string(f) }), "a")
	l.B().Attach(HandlerFunc(func(f []byte, _ *Port) { bGot = string(f) }), "b")
	l.A().Send([]byte("to-b"))
	l.B().Send([]byte("to-a"))
	s.Run(10)
	if aGot != "to-a" || bGot != "to-b" {
		t.Errorf("aGot=%q bGot=%q", aGot, bGot)
	}
}

func TestLinkLossStatistical(t *testing.T) {
	s := New(42)
	l := s.NewLink("lossy", 0, 0.5)
	delivered := 0
	l.B().Attach(HandlerFunc(func([]byte, *Port) { delivered++ }), "b")
	const sent = 2000
	for i := 0; i < sent; i++ {
		l.A().Send([]byte{1})
	}
	s.Run(sent + 10)
	if delivered < 850 || delivered > 1150 {
		t.Errorf("delivered %d of %d at 50%% loss", delivered, sent)
	}
	if st := l.Stats(); st.Dropped+st.Frames != sent {
		t.Errorf("drops %d + frames %d != %d", st.Dropped, st.Frames, sent)
	}
}

func TestLossDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		s := New(seed)
		l := s.NewLink("lossy", 0, 0.3)
		n := 0
		l.B().Attach(HandlerFunc(func([]byte, *Port) { n++ }), "b")
		for i := 0; i < 500; i++ {
			l.A().Send([]byte{1})
		}
		s.Run(1000)
		return n
	}
	if run(7) != run(7) {
		t.Error("same seed gave different delivery counts")
	}
}

func TestPortAccessors(t *testing.T) {
	s := New(1)
	l := s.NewLink("x", 0, 0)
	h := HandlerFunc(func([]byte, *Port) {})
	l.A().Attach(h, "left")
	if l.A().Label() != "left" || l.A().Owner() == nil || l.A().Link() != l {
		t.Error("port accessors")
	}
	if l.Latency() != 0 {
		t.Error("latency")
	}
	if l.String() != "link(x)" {
		t.Errorf("String = %q", l)
	}
	// Send to unattached port must not panic.
	l.B().Send([]byte{1})
	l.A().Send([]byte{1}) // B unattached
	s.Run(10)
}

func lineTopology(n int) map[ephid.AID][]ephid.AID {
	adj := make(map[ephid.AID][]ephid.AID)
	for i := 0; i < n-1; i++ {
		a, b := ephid.AID(i), ephid.AID(i+1)
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return adj
}

func TestComputeRoutesLine(t *testing.T) {
	adj := lineTopology(5)
	r := ComputeRoutes(adj, 0)
	for dst := ephid.AID(1); dst < 5; dst++ {
		if r[dst] != 1 {
			t.Errorf("next hop to %v = %v, want 1", dst, r[dst])
		}
	}
	r4 := ComputeRoutes(adj, 4)
	if r4[0] != 3 {
		t.Errorf("next hop 4->0 = %v", r4[0])
	}
}

func TestComputeRoutesStar(t *testing.T) {
	// Hub 0, leaves 1..4.
	adj := map[ephid.AID][]ephid.AID{}
	for i := ephid.AID(1); i <= 4; i++ {
		adj[0] = append(adj[0], i)
		adj[i] = []ephid.AID{0}
	}
	r1 := ComputeRoutes(adj, 1)
	for dst := ephid.AID(2); dst <= 4; dst++ {
		if r1[dst] != 0 {
			t.Errorf("leaf next hop to %v = %v, want hub", dst, r1[dst])
		}
	}
}

func TestPathLength(t *testing.T) {
	adj := lineTopology(6)
	tables := ComputeAllRoutes(adj)
	n, err := PathLength(tables, 0, 5)
	if err != nil || n != 5 {
		t.Errorf("PathLength = %d, %v", n, err)
	}
	if n, err := PathLength(tables, 3, 3); err != nil || n != 0 {
		t.Errorf("self path = %d, %v", n, err)
	}
	// Disconnected node.
	adj[99] = nil
	tables = ComputeAllRoutes(adj)
	if _, err := PathLength(tables, 0, 99); err == nil {
		t.Error("unreachable destination did not error")
	}
}

func TestRoutesReachabilityProperty(t *testing.T) {
	// Random connected graphs: every node pair must be connected with
	// a path of at most n-1 hops.
	f := func(seed int64, sz uint8) bool {
		n := int(sz%10) + 2
		rng := New(seed).Rand()
		adj := make(map[ephid.AID][]ephid.AID)
		// Random spanning tree guarantees connectivity.
		for i := 1; i < n; i++ {
			p := ephid.AID(rng.Intn(i))
			adj[ephid.AID(i)] = append(adj[ephid.AID(i)], p)
			adj[p] = append(adj[p], ephid.AID(i))
		}
		// Extra random edges.
		for e := 0; e < n; e++ {
			a, b := ephid.AID(rng.Intn(n)), ephid.AID(rng.Intn(n))
			if a != b {
				adj[a] = append(adj[a], b)
				adj[b] = append(adj[b], a)
			}
		}
		tables := ComputeAllRoutes(adj)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				hops, err := PathLength(tables, ephid.AID(s), ephid.AID(d))
				if err != nil || hops > n-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimerFiresInOrderWithEvents(t *testing.T) {
	s := New(1)
	var log []string
	s.Every(10*time.Millisecond, func() { log = append(log, "tick@"+s.Now().String()) })
	s.Schedule(25*time.Millisecond, func() { log = append(log, "ev@"+s.Now().String()) })
	s.Run(100)
	want := []string{"tick@10ms", "tick@20ms", "ev@25ms"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
}

// TestTimerDoesNotPreventIdleness: with an empty event queue, Step and
// Run refuse to fire timers — quiescence is defined by real events, so
// maintenance timers cannot keep a drained timeline alive forever.
func TestTimerDoesNotPreventIdleness(t *testing.T) {
	s := New(1)
	fired := 0
	s.Every(time.Millisecond, func() { fired++ })
	if n := s.Run(1000); n != 0 || fired != 0 {
		t.Errorf("empty-queue run executed %d events, %d ticks", n, fired)
	}
	if s.Step() {
		t.Error("Step fired against an empty queue")
	}
}

// TestTimerSweepsIdleGapsUnderRunUntil: RunUntil explicitly passes
// virtual time, so due timers fire across gaps with no queued events —
// how scheduled GC and renewal checks run through quiet periods.
func TestTimerSweepsIdleGapsUnderRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.Every(10*time.Second, func() { fired++ })
	s.RunUntil(35 * time.Second)
	if fired != 3 {
		t.Errorf("fired %d, want 3", fired)
	}
	if s.Now() != 35*time.Second {
		t.Errorf("now = %v", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.Every(10*time.Second, func() { fired++ })
	s.RunUntil(15 * time.Second)
	tm.Stop()
	tm.Stop() // idempotent
	s.RunUntil(100 * time.Second)
	if fired != 1 {
		t.Errorf("fired %d after stop, want 1", fired)
	}
}

// TestTimerCallbackSchedulesEvents: a timer that schedules real work
// (the renewal pattern) has that work executed in the same sweep.
func TestTimerCallbackSchedulesEvents(t *testing.T) {
	s := New(1)
	ran := 0
	s.Every(10*time.Second, func() {
		s.Schedule(time.Millisecond, func() { ran++ })
	})
	s.RunUntil(25 * time.Second)
	if ran != 2 {
		t.Errorf("scheduled work ran %d times, want 2", ran)
	}
}

// TestTimerTieBreak: a timer due exactly when an event is due fires
// first, so maintenance precedes the traffic it gates.
func TestTimerTieBreak(t *testing.T) {
	s := New(1)
	var log []string
	s.Schedule(10*time.Millisecond, func() { log = append(log, "ev") })
	s.Every(10*time.Millisecond, func() { log = append(log, "tick") })
	s.Run(10)
	if len(log) != 2 || log[0] != "tick" || log[1] != "ev" {
		t.Errorf("log = %v", log)
	}
}
