package netsim

import (
	"fmt"
	"sort"

	"apna/internal/ephid"
)

// Inter-domain routing substrate. APNA inherits the Internet's AS-level
// routing: border routers forward on the destination AID
// (Section IV-D3, "Transit ASes do not perform additional operations and
// simply forward packets to the next AS on the path"). The simulation
// computes static shortest-path next-hop tables over the AS adjacency
// graph — a stand-in for BGP.

// Routes maps a destination AID to the next-hop AID.
type Routes map[ephid.AID]ephid.AID

// ComputeRoutes runs a breadth-first shortest-path computation from src
// over the undirected AS adjacency graph and returns src's next-hop
// table. Neighbors are visited in sorted order so the result is
// deterministic when multiple equal-cost paths exist.
func ComputeRoutes(adj map[ephid.AID][]ephid.AID, src ephid.AID) Routes {
	next := make(Routes)
	visited := map[ephid.AID]bool{src: true}
	type hop struct {
		node  ephid.AID
		first ephid.AID // the src-adjacent first hop on the path
	}
	var frontier []hop
	for _, n := range sortedAIDs(adj[src]) {
		if !visited[n] {
			visited[n] = true
			next[n] = n
			frontier = append(frontier, hop{node: n, first: n})
		}
	}
	for len(frontier) > 0 {
		var nextFrontier []hop
		for _, h := range frontier {
			for _, n := range sortedAIDs(adj[h.node]) {
				if !visited[n] {
					visited[n] = true
					next[n] = h.first
					nextFrontier = append(nextFrontier, hop{node: n, first: h.first})
				}
			}
		}
		frontier = nextFrontier
	}
	return next
}

// ComputeAllRoutes builds next-hop tables for every AS in the graph.
func ComputeAllRoutes(adj map[ephid.AID][]ephid.AID) map[ephid.AID]Routes {
	all := make(map[ephid.AID]Routes, len(adj))
	for aid := range adj {
		all[aid] = ComputeRoutes(adj, aid)
	}
	return all
}

// PathLength returns the number of AS hops from src to dst under the
// routing tables, or an error if dst is unreachable (or a routing loop
// is detected).
func PathLength(tables map[ephid.AID]Routes, src, dst ephid.AID) (int, error) {
	if src == dst {
		return 0, nil
	}
	cur := src
	for hops := 1; hops <= len(tables)+1; hops++ {
		nh, ok := tables[cur][dst]
		if !ok {
			return 0, fmt.Errorf("netsim: %v unreachable from %v", dst, cur)
		}
		if nh == dst {
			return hops, nil
		}
		cur = nh
	}
	return 0, fmt.Errorf("netsim: routing loop from %v to %v", src, dst)
}

func sortedAIDs(in []ephid.AID) []ephid.AID {
	out := append([]ephid.AID(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
