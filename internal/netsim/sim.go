// Package netsim is the network substrate: a deterministic
// discrete-event simulator in which the APNA entities (hosts, border
// routers, AS services) run. It replaces the paper's physical testbed.
//
// Time is virtual: link latencies advance a simulated clock instead of
// sleeping, so protocol latency experiments (e.g. the
// connection-establishment RTT analysis of Section VII-C) are exact,
// fast and reproducible. Throughput experiments do not run through the
// simulator at all — they drive the router pipelines directly (see
// internal/pktgen) — so simulator overhead never pollutes performance
// numbers.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Simulator is a single-threaded discrete-event scheduler with a virtual
// clock. All handlers run on the caller's goroutine during Run; this
// makes simulations deterministic for a fixed seed and schedule.
type Simulator struct {
	now    time.Duration // virtual time since simulation start
	seq    uint64        // tie-breaker for events at equal times
	queue  eventQueue
	timers timerQueue
	rng    *rand.Rand
	epoch  int64 // Unix seconds corresponding to virtual time zero
	events uint64

	// Fault capture/replay state (see faults.go). At most one of
	// faultCap/faultReplay is non-nil.
	faultCap    *FaultTrace
	faultReplay *faultReplay
	faultSeq    uint64
}

// DefaultEpoch is the Unix time at which simulations start unless
// overridden: 2026-01-01 00:00:00 UTC.
const DefaultEpoch int64 = 1_767_225_600

// New creates a simulator seeded for deterministic pseudo-randomness
// (link loss, jitter).
func New(seed int64) *Simulator {
	return &Simulator{
		rng:   rand.New(rand.NewSource(seed)),
		epoch: DefaultEpoch,
	}
}

// SetEpoch overrides the Unix time of virtual time zero.
func (s *Simulator) SetEpoch(unix int64) { s.epoch = unix }

// Now returns the current virtual time since simulation start.
func (s *Simulator) Now() time.Duration { return s.now }

// NowUnix returns the current virtual wall-clock time in Unix seconds,
// the time base used for EphID expiration checks.
func (s *Simulator) NowUnix() int64 {
	return s.epoch + int64(s.now/time.Second)
}

// Rand exposes the simulator's deterministic randomness source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Schedule runs fn at now+delay. A negative delay panics: the simulator
// cannot travel back in time.
func (s *Simulator) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", delay))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// PeekNext returns the timestamp of the earliest queued event, or false
// if the queue is empty. Drivers that step the simulator toward a
// deadline use it to stop before executing events past the deadline.
func (s *Simulator) PeekNext() (time.Duration, bool) {
	if s.queue.Len() == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Step executes the single next event — a queued event or a recurring
// timer firing, whichever is due first — returning false if the event
// queue is empty. Timers never fire against an empty queue: quiescence
// ("nothing left to simulate") is defined by real events, so maintenance
// timers cannot keep a drained timeline alive. Use RunUntil / RunFor to
// sweep timers across idle gaps when a scenario explicitly passes time.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	if t := s.dueTimer(s.queue[0].at); t != nil {
		s.fireTimer(t)
		return true
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	s.events++
	ev.fn()
	return true
}

// dueTimer returns the earliest running timer due at or before `at`, or
// nil. Ties go to the timer so maintenance runs before the traffic it
// gates (e.g. a renewal fires before the packet that needed it).
func (s *Simulator) dueTimer(at time.Duration) *Timer {
	if s.timers.Len() == 0 || s.timers[0].due > at {
		return nil
	}
	return s.timers[0]
}

// fireTimer advances the clock to the timer's deadline, runs its
// callback, and reschedules the next occurrence.
func (s *Simulator) fireTimer(t *Timer) {
	s.now = t.due
	s.events++
	t.due += t.interval
	s.seq++
	t.seq = s.seq
	heap.Fix(&s.timers, 0)
	t.fn()
}

// Run executes events until the queue is empty or the budget of steps is
// exhausted, returning the number of events executed. A budget guards
// against livelocked simulations (two nodes bouncing a packet forever).
func (s *Simulator) Run(budget int) int {
	n := 0
	for n < budget && s.Step() {
		n++
	}
	return n
}

// RunUntil executes events and recurring timers with timestamps at or
// before the deadline (virtual time since start). Unlike Step, timers
// fire here even when the event queue is empty: the caller is explicitly
// passing virtual time, so scheduled maintenance (EphID renewal checks,
// revocation GC) happens across idle gaps exactly as it would under
// live traffic.
func (s *Simulator) RunUntil(deadline time.Duration) int {
	n := 0
	for {
		next := deadline + 1
		if s.queue.Len() > 0 {
			next = s.queue[0].at
		}
		timerFirst := s.timers.Len() > 0 && s.timers[0].due <= next
		if timerFirst {
			next = s.timers[0].due
		}
		if next > deadline {
			break
		}
		if timerFirst {
			s.fireTimer(s.timers[0])
		} else {
			ev := heap.Pop(&s.queue).(*event)
			s.now = ev.at
			s.events++
			ev.fn()
		}
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// Timer is a recurring virtual-time callback created by Every. It fires
// interleaved with ordinary events in strict time order; see Step and
// RunUntil for when due timers actually run.
type Timer struct {
	due      time.Duration
	seq      uint64
	index    int // heap position, -1 when stopped
	interval time.Duration
	fn       func()
	queue    *timerQueue
}

// Every schedules fn to run every interval of virtual time, first at
// now+interval. It panics on non-positive intervals (a zero-interval
// timer would livelock the clock). Stop the returned Timer to cancel.
func (s *Simulator) Every(interval time.Duration, fn func()) *Timer {
	if interval <= 0 {
		panic(fmt.Sprintf("netsim: non-positive timer interval %v", interval))
	}
	s.seq++
	t := &Timer{due: s.now + interval, seq: s.seq, interval: interval, fn: fn, queue: &s.timers}
	heap.Push(&s.timers, t)
	return t
}

// Stop cancels the timer. Safe to call more than once.
func (t *Timer) Stop() {
	if t.index < 0 {
		return
	}
	// The owning simulator's heap holds the timer; remove by index.
	t.heapRemove()
}

// heapRemove detaches the timer from its queue. Timers keep their heap
// index up to date through timerQueue's Swap, so removal is O(log n)
// without a back-pointer to the simulator.
func (t *Timer) heapRemove() {
	q := t.queue
	if q == nil || t.index < 0 {
		return
	}
	heap.Remove(q, t.index)
	t.index = -1
	t.queue = nil
}

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Events reports the total number of events executed so far.
func (s *Simulator) Events() uint64 { return s.events }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// timerQueue is the min-heap of recurring timers, ordered like the
// event queue (time, then creation sequence).
type timerQueue []*Timer

func (q timerQueue) Len() int { return len(q) }
func (q timerQueue) Less(i, j int) bool {
	if q[i].due != q[j].due {
		return q[i].due < q[j].due
	}
	return q[i].seq < q[j].seq
}
func (q timerQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *timerQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}
func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}
