// Package netsim is the network substrate: a deterministic
// discrete-event simulator in which the APNA entities (hosts, border
// routers, AS services) run. It replaces the paper's physical testbed.
//
// Time is virtual: link latencies advance a simulated clock instead of
// sleeping, so protocol latency experiments (e.g. the
// connection-establishment RTT analysis of Section VII-C) are exact,
// fast and reproducible. Throughput experiments do not run through the
// simulator at all — they drive the router pipelines directly (see
// internal/pktgen) — so simulator overhead never pollutes performance
// numbers.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Simulator is a single-threaded discrete-event scheduler with a virtual
// clock. All handlers run on the caller's goroutine during Run; this
// makes simulations deterministic for a fixed seed and schedule.
type Simulator struct {
	now    time.Duration // virtual time since simulation start
	seq    uint64        // tie-breaker for events at equal times
	queue  eventQueue
	rng    *rand.Rand
	epoch  int64 // Unix seconds corresponding to virtual time zero
	events uint64
}

// DefaultEpoch is the Unix time at which simulations start unless
// overridden: 2026-01-01 00:00:00 UTC.
const DefaultEpoch int64 = 1_767_225_600

// New creates a simulator seeded for deterministic pseudo-randomness
// (link loss, jitter).
func New(seed int64) *Simulator {
	return &Simulator{
		rng:   rand.New(rand.NewSource(seed)),
		epoch: DefaultEpoch,
	}
}

// SetEpoch overrides the Unix time of virtual time zero.
func (s *Simulator) SetEpoch(unix int64) { s.epoch = unix }

// Now returns the current virtual time since simulation start.
func (s *Simulator) Now() time.Duration { return s.now }

// NowUnix returns the current virtual wall-clock time in Unix seconds,
// the time base used for EphID expiration checks.
func (s *Simulator) NowUnix() int64 {
	return s.epoch + int64(s.now/time.Second)
}

// Rand exposes the simulator's deterministic randomness source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Schedule runs fn at now+delay. A negative delay panics: the simulator
// cannot travel back in time.
func (s *Simulator) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", delay))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// PeekNext returns the timestamp of the earliest queued event, or false
// if the queue is empty. Drivers that step the simulator toward a
// deadline use it to stop before executing events past the deadline.
func (s *Simulator) PeekNext() (time.Duration, bool) {
	if s.queue.Len() == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Step executes the single next event, returning false if the queue is
// empty.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	s.events++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the budget of steps is
// exhausted, returning the number of events executed. A budget guards
// against livelocked simulations (two nodes bouncing a packet forever).
func (s *Simulator) Run(budget int) int {
	n := 0
	for n < budget && s.Step() {
		n++
	}
	return n
}

// RunUntil executes events with timestamps at or before the deadline
// (virtual time since start).
func (s *Simulator) RunUntil(deadline time.Duration) int {
	n := 0
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.Step()
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Events reports the total number of events executed so far.
func (s *Simulator) Events() uint64 { return s.events }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
