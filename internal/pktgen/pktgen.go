// Package pktgen is the traffic-generator substrate for the forwarding
// experiment (paper Section V-B3, Figure 8). It stands in for the
// Spirent chassis of the paper's testbed: it builds valid APNA frames
// of configurable sizes, drives border-router pipelines with them from
// N workers, and converts the measured per-packet cost into the
// packet-rate (Mpps) and bit-rate (Gbps) series of Figure 8, clamped
// against a configurable line-rate capacity (120 Gbps in the paper:
// 6 dual-port 10 GbE NICs).
package pktgen

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"apna/internal/border"
	"apna/internal/crypto"
	"apna/internal/ephid"
	"apna/internal/hostdb"
	"apna/internal/wire"
)

// PaperPacketSizes are the five frame sizes of Figure 8.
var PaperPacketSizes = []int{128, 256, 512, 1024, 1518}

// PaperCapacityGbps is the testbed NIC capacity.
const PaperCapacityGbps = 120.0

// etherOverhead is the per-frame wire overhead beyond the frame bytes:
// 8 B preamble + 12 B inter-frame gap (the 4 B FCS is part of the
// frame size, as in standard Ethernet accounting).
const etherOverhead = 20

// LineRatePPS returns the theoretical maximum packet rate of a link of
// the given capacity for a frame size — the "theoretical maximum
// performance" line the paper says its measurements match.
func LineRatePPS(capacityGbps float64, frameSize int) float64 {
	return capacityGbps * 1e9 / (float64(frameSize+etherOverhead) * 8)
}

// Fixture is a self-contained data-plane world: an AS with a router,
// a population of registered hosts, and valid MACed frames, ready to be
// pumped through pipelines.
type Fixture struct {
	// AID is the AS's identifier (100 for single-fixture setups).
	AID    ephid.AID
	Router *border.Router
	Sealer *ephid.Sealer
	DB     *hostdb.DB
	Secret *crypto.ASSecret
	// Frames holds one valid egress frame per host, all of equal
	// size.
	Frames [][]byte
	// Now is the fixed clock the router checks expiry against.
	Now int64
}

// NewFixture builds a fixture with the given number of hosts and frame
// size (total APNA frame bytes, header included).
func NewFixture(hosts, frameSize int) (*Fixture, error) {
	if frameSize < wire.HeaderSize {
		return nil, fmt.Errorf("pktgen: frame size %d below header size %d", frameSize, wire.HeaderSize)
	}
	secret, err := crypto.NewASSecret()
	if err != nil {
		return nil, err
	}
	sealer, err := ephid.NewSealer(secret)
	if err != nil {
		return nil, err
	}
	f := &Fixture{AID: 100, Sealer: sealer, DB: hostdb.New(), Secret: secret, Now: 1_000_000}
	f.Router, err = border.New(100, sealer, f.DB, secret, func() int64 { return f.Now })
	if err != nil {
		return nil, err
	}
	f.Router.SetRoutes(nil)

	payload := make([]byte, frameSize-wire.HeaderSize)
	entries := make([]hostdb.Entry, 0, hosts)
	for i := 0; i < hosts; i++ {
		entries = append(entries, hostdb.Entry{
			HID:          ephid.HID(i + 1),
			Keys:         crypto.DeriveHostASKeys([]byte{byte(i), byte(i >> 8), byte(i >> 16), 0x7}),
			RegisteredAt: f.Now,
		})
	}
	f.DB.PutBatch(entries)
	for i := 0; i < hosts; i++ {
		hid := ephid.HID(i + 1)
		keys := entries[i].Keys
		src := sealer.Mint(ephid.Payload{HID: hid, ExpTime: uint32(f.Now) + 3600})

		p := wire.Packet{
			Header: wire.Header{
				NextProto: wire.ProtoSession, HopLimit: wire.DefaultHopLimit,
				Nonce:  uint64(i) + 1,
				SrcAID: 100, DstAID: 200,
				SrcEphID: src,
			},
			Payload: payload,
		}
		p.Header.DstEphID[0] = byte(i)
		frame, err := p.Encode()
		if err != nil {
			return nil, err
		}
		pm, err := wire.NewPacketMAC(keys.MAC[:])
		if err != nil {
			return nil, err
		}
		pm.Apply(frame)
		f.Frames = append(f.Frames, frame)
	}
	return f, nil
}

// Result is one measurement point of the Figure 8 reproduction.
type Result struct {
	FrameSize int
	Workers   int
	Packets   uint64
	Elapsed   time.Duration
	// PipelinePPS is the raw software pipeline capability.
	PipelinePPS float64
	// LinePPS is the line-rate ceiling for this frame size.
	LinePPS float64
	// DeliveredPPS is min(PipelinePPS, LinePPS) — what the testbed
	// would observe on the wire.
	DeliveredPPS float64
	// DeliveredGbps is the corresponding bit rate counting frame
	// bytes (the paper's bit-rate axis).
	DeliveredGbps float64
	// LineLimited reports whether the NIC capacity, not the pipeline,
	// was the bottleneck — the paper's headline claim is that this is
	// true at every packet size.
	LineLimited bool
	// CoresForLineRate projects how many cores of this machine the
	// software pipeline would need to saturate the line rate. The
	// paper's DPDK/AES-NI C pipeline on 2x8 Xeon cores sat below the
	// equivalent figure, hence its "no throughput penalty" result.
	CoresForLineRate float64
}

// Run pumps the fixture's frames through per-worker egress pipelines
// for roughly the given number of packets per worker and produces the
// measurement.
func (f *Fixture) Run(workers, packetsPerWorker int, capacityGbps float64) Result {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var processed atomic.Uint64
	var bad atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now() //apna:wallclock
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pipe := f.Router.NewEgressPipeline()
			frames := f.Frames
			n := len(frames)
			local := 0
			for i := 0; i < packetsPerWorker; i++ {
				if pipe.Process(frames[(i+w)%n]) != border.VerdictForward {
					bad.Add(1)
				}
				local++
			}
			processed.Add(uint64(local))
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start) //apna:wallclock

	frameSize := len(f.Frames[0])
	pps := float64(processed.Load()) / elapsed.Seconds()
	line := LineRatePPS(capacityGbps, frameSize)
	delivered := min(pps, line)
	res := Result{
		FrameSize: frameSize, Workers: workers,
		Packets: processed.Load(), Elapsed: elapsed,
		PipelinePPS: pps, LinePPS: line,
		DeliveredPPS:     delivered,
		DeliveredGbps:    delivered * float64(frameSize) * 8 / 1e9,
		LineLimited:      pps >= line,
		CoresForLineRate: line / (pps / float64(workers)),
	}
	if bad.Load() > 0 {
		// A fixture bug, not a measurement: surface loudly.
		panic(fmt.Sprintf("pktgen: %d frames failed verification", bad.Load()))
	}
	return res
}

// Sweep measures every frame size in sizes with the same worker count
// and packet budget.
func Sweep(hosts, workers, packetsPerWorker int, capacityGbps float64, sizes []int) ([]Result, error) {
	results := make([]Result, 0, len(sizes))
	for _, size := range sizes {
		f, err := NewFixture(hosts, size)
		if err != nil {
			return nil, err
		}
		results = append(results, f.Run(workers, packetsPerWorker, capacityGbps))
	}
	return results, nil
}
