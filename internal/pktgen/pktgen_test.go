package pktgen

import (
	"math"
	"testing"

	"apna/internal/border"
	"apna/internal/wire"
)

func TestLineRatePPS(t *testing.T) {
	// 120 Gbps at 1518 B frames: 120e9 / ((1518+20)*8) = 9.75 Mpps.
	got := LineRatePPS(120, 1518)
	want := 120e9 / ((1518 + 20) * 8)
	if math.Abs(got-want) > 1 {
		t.Errorf("line rate = %f, want %f", got, want)
	}
	// Smaller frames mean higher packet rates.
	if LineRatePPS(120, 128) <= LineRatePPS(120, 1518) {
		t.Error("line rate not monotone in frame size")
	}
}

func TestFixtureFramesValid(t *testing.T) {
	f, err := NewFixture(16, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Frames) != 16 {
		t.Fatalf("frames = %d", len(f.Frames))
	}
	pipe := f.Router.NewEgressPipeline()
	for i, frame := range f.Frames {
		if len(frame) != 256 {
			t.Fatalf("frame %d size %d", i, len(frame))
		}
		if !wire.ValidFrame(frame) {
			t.Fatalf("frame %d invalid", i)
		}
		if v := pipe.Process(frame); v != border.VerdictForward {
			t.Fatalf("frame %d verdict %v", i, v)
		}
	}
}

func TestFixtureRejectsTinyFrames(t *testing.T) {
	if _, err := NewFixture(1, wire.HeaderSize-1); err == nil {
		t.Error("sub-header frame size accepted")
	}
}

func TestRunProducesConsistentResult(t *testing.T) {
	f, err := NewFixture(8, 128)
	if err != nil {
		t.Fatal(err)
	}
	res := f.Run(2, 5_000, PaperCapacityGbps)
	if res.Packets != 10_000 {
		t.Errorf("packets = %d", res.Packets)
	}
	if res.PipelinePPS <= 0 {
		t.Error("no throughput measured")
	}
	if res.DeliveredPPS > res.LinePPS+1 {
		t.Error("delivered exceeds line rate")
	}
	if res.DeliveredPPS > res.PipelinePPS+1 {
		t.Error("delivered exceeds pipeline capability")
	}
	wantGbps := res.DeliveredPPS * 128 * 8 / 1e9
	if math.Abs(res.DeliveredGbps-wantGbps) > 1e-9 {
		t.Errorf("gbps = %f, want %f", res.DeliveredGbps, wantGbps)
	}
	if res.FrameSize != 128 || res.Workers != 2 {
		t.Errorf("result metadata: %+v", res)
	}
}

func TestSweepPaperSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is a heavier smoke test")
	}
	results, err := Sweep(64, 2, 2_000, PaperCapacityGbps, PaperPacketSizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PaperPacketSizes) {
		t.Fatalf("results = %d", len(results))
	}
	// Figure 8(a) shape: the line-rate ceiling (and hence delivered
	// pps when line-limited) decreases with frame size.
	for i := 1; i < len(results); i++ {
		if results[i].LinePPS >= results[i-1].LinePPS {
			t.Errorf("line pps not decreasing: %f -> %f", results[i-1].LinePPS, results[i].LinePPS)
		}
	}
}
