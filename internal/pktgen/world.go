package pktgen

import (
	"fmt"
	"math/rand"
	"time"

	"apna/internal/border"
	"apna/internal/crypto"
	"apna/internal/ephid"
	"apna/internal/hostdb"
	"apna/internal/netsim"
	"apna/internal/wire"
)

// BadKind enumerates the adversarial frame variants a World can mix
// into its traffic, exercising every data-plane drop verdict.
type BadKind int

const (
	// BadForgedSrc carries a source EphID that no AS minted.
	BadForgedSrc BadKind = iota
	// BadExpiredSrc carries a source EphID whose lifetime has passed.
	BadExpiredSrc
	// BadRevokedSrc carries a source EphID on the revocation list.
	BadRevokedSrc
	// BadMAC carries a corrupted per-packet MAC (spoofed source).
	BadMAC
	// BadForgedDst carries a forged destination EphID (dropped at
	// ingress).
	BadForgedDst
	// BadRemoteRevokedSrc carries a genuine, validly-MACed source EphID
	// that the *destination* AS has learned is revoked through the
	// inter-domain accountability plane — the frame passes the source
	// AS's egress checks and is dropped only by the remote revocation
	// list at ingress.
	BadRemoteRevokedSrc

	badKinds
)

// Lane is one directed stream of traffic between two ASes of a World:
// frames minted by Src's hosts, addressed to Dst's hosts, routed via
// Src's next-hop table.
type Lane struct {
	Src, Dst *Fixture
	// Frames holds the lane's traffic, good and bad mixed, all of
	// equal size.
	Frames [][]byte
	// Bad counts the adversarial frames per kind.
	Bad [badKinds]int
}

// World is a multi-AS data plane: one Fixture per AS (router, sealer,
// host population), ring adjacency with computed next-hop tables, and
// one traffic lane per AS toward its ring successor. It is what the
// parallel forwarding engine saturates in experiment E8.
type World struct {
	ASes  []*Fixture
	Lanes []*Lane
	// Now is the fixed clock every router checks expiry against.
	Now int64
}

// WorldConfig sizes a World.
type WorldConfig struct {
	// ASes is the number of autonomous systems (>= 2).
	ASes int
	// HostsPerAS is each AS's registered host population.
	HostsPerAS int
	// FrameSize is the total APNA frame size in bytes.
	FrameSize int
	// FramesPerLane is the number of frames minted per lane; 0 means
	// one per source host.
	FramesPerLane int
	// BadFrac in [0,1] is the fraction of frames replaced with
	// adversarial variants (cycling through every BadKind).
	BadFrac float64
	// Seed drives the deterministic placement of bad frames.
	Seed int64
}

// NewWorld builds the multi-AS data plane.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.ASes < 2 {
		return nil, fmt.Errorf("pktgen: world needs >= 2 ASes, got %d", cfg.ASes)
	}
	if cfg.HostsPerAS < 1 {
		return nil, fmt.Errorf("pktgen: world needs >= 1 host per AS, got %d", cfg.HostsPerAS)
	}
	if cfg.BadFrac < 0 || cfg.BadFrac > 1 {
		return nil, fmt.Errorf("pktgen: bad fraction %v outside [0,1]", cfg.BadFrac)
	}
	if cfg.FrameSize < wire.HeaderSize {
		return nil, fmt.Errorf("pktgen: frame size %d below header size %d", cfg.FrameSize, wire.HeaderSize)
	}
	framesPerLane := cfg.FramesPerLane
	if framesPerLane <= 0 {
		framesPerLane = cfg.HostsPerAS
	}

	w := &World{Now: 1_000_000}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Stand up the per-AS data planes. AIDs are 100, 101, ...
	for i := 0; i < cfg.ASes; i++ {
		f, err := newEmptyFixture(ephid.AID(100+i), w.Now)
		if err != nil {
			return nil, err
		}
		registerHosts(f, cfg.HostsPerAS, i)
		w.ASes = append(w.ASes, f)
	}

	// Ring adjacency with computed next-hop tables, and real ports so
	// route lookups resolve: the engine never sends on them, but the
	// tables must contain them (as they would in deployment).
	sim := netsim.New(cfg.Seed)
	adj := make(map[ephid.AID][]ephid.AID, cfg.ASes)
	for i, f := range w.ASes {
		next := w.ASes[(i+1)%cfg.ASes]
		link := sim.NewLink(fmt.Sprintf("%v-%v", f.AID, next.AID), time.Millisecond, 0)
		f.Router.AttachNeighbor(next.AID, link.A())
		next.Router.AttachNeighbor(f.AID, link.B())
		adj[f.AID] = append(adj[f.AID], next.AID)
		adj[next.AID] = append(adj[next.AID], f.AID)
	}
	tables := netsim.ComputeAllRoutes(adj)
	for _, f := range w.ASes {
		f.Router.SetRoutes(tables[f.AID])
	}

	// One lane per AS toward its ring successor, with bad frames mixed
	// in deterministically.
	for i, src := range w.ASes {
		dst := w.ASes[(i+1)%cfg.ASes]
		lane := &Lane{Src: src, Dst: dst}
		payload := make([]byte, cfg.FrameSize-wire.HeaderSize)
		for j := 0; j < framesPerLane; j++ {
			hostIdx := j % cfg.HostsPerAS
			kind := BadKind(-1)
			if cfg.BadFrac > 0 && rng.Float64() < cfg.BadFrac {
				kind = BadKind(rng.Intn(int(badKinds)))
				lane.Bad[kind]++
			}
			frame, err := mintLaneFrame(src, dst, hostIdx, uint64(j)+1, payload, kind, rng)
			if err != nil {
				return nil, err
			}
			lane.Frames = append(lane.Frames, frame)
		}
		w.Lanes = append(w.Lanes, lane)
	}
	return w, nil
}

// newEmptyFixture builds a fixture shell (router, sealer, empty DB) for
// one AS without hosts or frames.
func newEmptyFixture(aid ephid.AID, now int64) (*Fixture, error) {
	secret, err := crypto.NewASSecret()
	if err != nil {
		return nil, err
	}
	sealer, err := ephid.NewSealer(secret)
	if err != nil {
		return nil, err
	}
	f := &Fixture{AID: aid, Sealer: sealer, DB: hostdb.New(), Secret: secret, Now: now}
	f.Router, err = border.New(aid, sealer, f.DB, secret, func() int64 { return f.Now })
	if err != nil {
		return nil, err
	}
	return f, nil
}

// registerHosts populates the fixture's host database in one batched
// snapshot swap.
func registerHosts(f *Fixture, hosts, asIndex int) {
	entries := make([]hostdb.Entry, 0, hosts)
	for i := 0; i < hosts; i++ {
		entries = append(entries, hostdb.Entry{
			HID: ephid.HID(i + 1),
			Keys: crypto.DeriveHostASKeys([]byte{
				byte(i), byte(i >> 8), byte(i >> 16), byte(asIndex), 0x7}),
			RegisteredAt: f.Now,
		})
	}
	f.DB.PutBatch(entries)
}

// mintLaneFrame builds one frame from src host hostIdx toward the
// matching dst host, optionally sabotaged per kind.
func mintLaneFrame(src, dst *Fixture, hostIdx int, nonce uint64, payload []byte, kind BadKind, rng *rand.Rand) ([]byte, error) {
	srcHID := ephid.HID(hostIdx + 1)
	dstHID := ephid.HID(hostIdx + 1)
	exp := uint32(src.Now) + 3600

	srcEphID := src.Sealer.Mint(ephid.Payload{HID: srcHID, ExpTime: exp})
	dstEphID := dst.Sealer.Mint(ephid.Payload{HID: dstHID, ExpTime: uint32(dst.Now) + 3600})

	switch kind {
	case BadForgedSrc:
		rng.Read(srcEphID[:])
	case BadExpiredSrc:
		srcEphID = src.Sealer.Mint(ephid.Payload{HID: srcHID, ExpTime: uint32(src.Now) - 10})
	case BadRevokedSrc:
		src.Router.Revoked().Insert(srcEphID, exp)
	case BadForgedDst:
		rng.Read(dstEphID[:])
	case BadRemoteRevokedSrc:
		dst.Router.ApplyRemote(srcEphID, src.AID, exp)
	}

	p := wire.Packet{
		Header: wire.Header{
			NextProto: wire.ProtoSession, HopLimit: wire.DefaultHopLimit,
			Nonce:  nonce,
			SrcAID: src.AID, DstAID: dst.AID,
			SrcEphID: srcEphID, DstEphID: dstEphID,
		},
		Payload: payload,
	}
	frame, err := p.Encode()
	if err != nil {
		return nil, err
	}
	keys, err := src.DB.Get(srcHID)
	if err != nil {
		return nil, err
	}
	pm, err := wire.NewPacketMAC(keys.Keys.MAC[:])
	if err != nil {
		return nil, err
	}
	pm.Apply(frame)
	if kind == BadMAC {
		// Flip the frame's last byte: the final payload byte when there
		// is a payload, otherwise the last MAC byte — either way the
		// MAC check fails.
		frame[len(frame)-1] ^= 0xff
	}
	return frame, nil
}

// Shard splits frames into `workers` stripes by round-robin, so every
// worker sees every sender (the paper's RSS-style flow spraying).
func Shard(frames [][]byte, workers int) [][][]byte {
	if workers < 1 {
		workers = 1
	}
	out := make([][][]byte, workers)
	for i := range out {
		out[i] = make([][]byte, 0, (len(frames)+workers-1)/workers)
	}
	for i, f := range frames {
		out[i%workers] = append(out[i%workers], f)
	}
	return out
}
