package pktgen

import (
	"testing"

	"apna/internal/border"
	"apna/internal/wire"
)

func TestNewWorldShape(t *testing.T) {
	w, err := NewWorld(WorldConfig{ASes: 3, HostsPerAS: 8, FrameSize: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.ASes) != 3 || len(w.Lanes) != 3 {
		t.Fatalf("got %d ASes, %d lanes", len(w.ASes), len(w.Lanes))
	}
	for i, lane := range w.Lanes {
		if len(lane.Frames) != 8 {
			t.Fatalf("lane %d: %d frames", i, len(lane.Frames))
		}
		if lane.Dst != w.ASes[(i+1)%3] {
			t.Fatalf("lane %d: wrong destination", i)
		}
	}
}

// TestWorldCleanTrafficForwards pushes every clean frame through the
// full egress -> route -> ingress path by hand.
func TestWorldCleanTrafficForwards(t *testing.T) {
	w, err := NewWorld(WorldConfig{ASes: 2, HostsPerAS: 4, FrameSize: 128, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lane := range w.Lanes {
		eg := lane.Src.Router.NewEgressPipeline()
		ig := lane.Dst.Router.NewIngressPipeline()
		for _, frame := range lane.Frames {
			if v := eg.Process(frame); v != border.VerdictForward {
				t.Fatalf("egress verdict %v", v)
			}
			if _, ok := lane.Src.Router.LookupRoute(wire.FrameDstAID(frame)); !ok {
				t.Fatalf("no route toward %v", wire.FrameDstAID(frame))
			}
			if v, _ := ig.Process(frame); v != border.VerdictForward {
				t.Fatalf("ingress verdict %v", v)
			}
		}
	}
}

// TestWorldBadFramesDrop verifies each adversarial kind produces its
// matching drop verdict somewhere on the path.
func TestWorldBadFramesDrop(t *testing.T) {
	w, err := NewWorld(WorldConfig{
		ASes: 2, HostsPerAS: 16, FrameSize: 256,
		FramesPerLane: 400, BadFrac: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[border.Verdict]int)
	totalBad := 0
	for _, lane := range w.Lanes {
		for _, n := range lane.Bad {
			totalBad += n
		}
		eg := lane.Src.Router.NewEgressPipeline()
		ig := lane.Dst.Router.NewIngressPipeline()
		for _, frame := range lane.Frames {
			v := eg.Process(frame)
			if v != border.VerdictForward {
				counts[v]++
				continue
			}
			iv, _ := ig.Process(frame)
			counts[iv]++
		}
	}
	if totalBad == 0 {
		t.Fatal("no bad frames generated at BadFrac=0.5")
	}
	dropped := 0
	for v, n := range counts {
		if v != border.VerdictForward {
			dropped += n
		}
	}
	if dropped != totalBad {
		t.Fatalf("dropped %d, expected %d bad frames (verdicts %v)", dropped, totalBad, counts)
	}
	for _, want := range []border.Verdict{
		border.VerdictDropBadEphID, border.VerdictDropExpired,
		border.VerdictDropRevoked, border.VerdictDropBadMAC,
	} {
		if counts[want] == 0 {
			t.Errorf("no %v drops in a 50%% bad mix", want)
		}
	}
}

func TestWorldConfigValidation(t *testing.T) {
	bad := []WorldConfig{
		{ASes: 1, HostsPerAS: 1, FrameSize: 128},
		{ASes: 2, HostsPerAS: 0, FrameSize: 128},
		{ASes: 2, HostsPerAS: 1, FrameSize: 10},
		{ASes: 2, HostsPerAS: 1, FrameSize: 128, BadFrac: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewWorld(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestShard(t *testing.T) {
	frames := make([][]byte, 10)
	for i := range frames {
		frames[i] = []byte{byte(i)}
	}
	stripes := Shard(frames, 3)
	if len(stripes) != 3 {
		t.Fatalf("got %d stripes", len(stripes))
	}
	total := 0
	for _, s := range stripes {
		total += len(s)
	}
	if total != 10 {
		t.Fatalf("stripes carry %d frames", total)
	}
	if stripes[0][0][0] != 0 || stripes[1][0][0] != 1 || stripes[2][0][0] != 2 {
		t.Fatal("striping is not round-robin")
	}
}
