// Workload model: the samplers that turn a seed into realistic host
// behavior. The shapes follow internal/trace (the Section V-A3 trace
// synthesizer) — diurnal raised-cosine arrival intensity, Poisson
// per-second counts, Zipf host popularity, dragonfly/tortoise flow
// durations — plus a heavy-tailed Pareto flow-size law so the modeled
// population also produces a byte volume. Everything is driven by
// explicit *rand.Rand instances so one seed yields one event trace.
package population

import (
	"math"
	"math/rand"
)

// intensity is the diurnal arrival rate per host at the given tick of a
// period-long virtual day: a raised cosine peaking at 14/24 of the
// period with its trough 12 hours (half a period) away, exactly the
// curve internal/trace fits to the paper's 24-hour trace. Short runs
// compress the whole day into their tick budget (period = Ticks), so
// even a 60-tick CI run sweeps peak and trough.
func intensity(peak, base float64, tick, period int) float64 {
	if period <= 0 {
		return peak
	}
	phase := 2 * math.Pi * (float64(tick)/float64(period) - 14.0/24.0)
	shape := (1 + math.Cos(phase)) / 2
	return base + (peak-base)*shape
}

// poisson samples a Poisson variate: Knuth's product method for small
// lambda, the normal approximation above 30 (indistinguishable there
// and O(1), which matters when one worker's lambda is thousands).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Duration-mixture parameters (Brownlee & Claffy dragonflies and
// tortoises, the paper's citation for "98% of flows last less than 15
// minutes"): most flows are short exponentials, a heavy Pareto tail
// keeps a few alive for hours — those are the flows that must renew
// their EphIDs, repeatedly, at validity-window edges.
const (
	dragonflyFrac  = 0.95
	dragonflyMeanS = 45.0
	tortoiseAlpha  = 1.3
	tortoiseXmS    = 60.0
	tortoiseCapS   = 6 * 3600.0
)

// sampleDuration draws a flow duration in whole seconds (at least 1).
func sampleDuration(rng *rand.Rand) uint32 {
	var s float64
	if rng.Float64() < dragonflyFrac {
		s = rng.ExpFloat64() * dragonflyMeanS
	} else {
		s = tortoiseXmS * math.Pow(rng.Float64(), -1/tortoiseAlpha)
		if s > tortoiseCapS {
			s = tortoiseCapS
		}
	}
	if s < 1 {
		return 1
	}
	return uint32(s)
}

// Flow-size law: Pareto with alpha just above 1, so the mean exists but
// the tail carries most of the bytes (the elephants-and-mice shape of
// measured Internet traffic).
const (
	sizeAlpha = 1.2
	sizeXmB   = 4 << 10 // 4 KiB minimum flow
	sizeCapB  = 1 << 30 // 1 GiB cap keeps counters sane
)

// sampleSize draws a flow size in bytes.
func sampleSize(rng *rand.Rand) uint64 {
	x := sizeXmB * math.Pow(rng.Float64(), -1/sizeAlpha)
	if x > sizeCapB {
		x = sizeCapB
	}
	return uint64(x)
}

// paretoMean returns the analytic mean of a Pareto(alpha, xm)
// distribution (alpha > 1), used by the moment tests to check the
// samplers against their closed forms.
func paretoMean(alpha, xm float64) float64 { return alpha * xm / (alpha - 1) }
