// Package population is the trace-driven population workload subsystem:
// it synthesizes realistic host behavior — diurnal session-arrival
// rates, heavy-tailed (Pareto) flow sizes and durations, correlated
// renewal storms at validity-window edges, host join/leave churn — from
// a seeded, deterministic model, and pushes it through share-nothing
// workers directly against the control-plane engines (MS
// issuance/renewal, hostdb put/revoke/GC, AA strikes, accountability
// receipt and digest caches).
//
// No full hosts are instantiated: one modeled host is ~150 bytes of
// worker-local state (its kHA keys, control EphID, and a small pool of
// flow slots), so 10^6–10^7 modeled hosts fit in a single process.
// That is the point — the paper's Section IX sizes the management
// service for ISP populations of millions of hosts, and this package is
// what lets the repo measure those paths at that scale instead of at
// the tens of hosts the conformance experiments use.
//
// Determinism: all behavior derives from per-worker rand.Rand instances
// seeded from (Seed, worker) and from virtual time, and every modeled
// host is owned by exactly one worker, so the logical event trace —
// which host did what at which tick, and every counter — is a pure
// function of the Config. Only wall-clock measurements (latencies,
// events/sec, RSS) vary between runs. EphID byte values are not part of
// the trace: the sealer's IV counter is shared across workers, so the
// identifiers themselves depend on scheduling.
package population

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"apna/internal/accountability"
	"apna/internal/cert"
	"apna/internal/crypto"
	"apna/internal/ephid"
	"apna/internal/hostdb"
	"apna/internal/ms"
	"apna/internal/wire"
)

// ErrBadConfig reports an invalid population configuration.
var ErrBadConfig = errors.New("population: invalid configuration")

// maxWorkers bounds the worker count: each worker owns a 2^25-wide HID
// namespace, so 64 workers cover the uint32 HID space with room left
// for the reserved offender range.
const maxWorkers = 64

// hidSpan is each worker's HID namespace width.
const hidSpan = 1 << 25

// offenderHIDBase is where the coordinator's complaint offenders live —
// above every worker's namespace.
const offenderHIDBase = 0xF000_0000

// Config parameterizes a population run. Rates are per modeled host so
// one configuration scales across population tiers.
type Config struct {
	// Hosts is the modeled host population.
	Hosts int `json:"hosts"`
	// Ticks is the run length in virtual seconds.
	Ticks int `json:"ticks"`
	// Workers is the share-nothing worker count; <= 0 means NumCPU
	// (clamped to 64 and to Hosts).
	Workers int `json:"workers"`
	// Seed drives the whole model.
	Seed int64 `json:"seed"`

	// PeakSessionsPerHost is the diurnal-peak arrival rate, new
	// sessions per second per host.
	PeakSessionsPerHost float64 `json:"peak_sessions_per_host"`
	// BaseSessionsPerHost is the overnight trough (0: peak/4).
	BaseSessionsPerHost float64 `json:"base_sessions_per_host"`
	// ZipfS is the host-popularity skew (> 1; 0 means 1.1).
	ZipfS float64 `json:"zipf_s"`
	// DiurnalPeriod is the virtual length of one "day" in ticks; 0
	// compresses a full day into the run (period = Ticks) so even short
	// runs sweep peak and trough.
	DiurnalPeriod int `json:"diurnal_period"`

	// EphIDLifetime is the issued EphID validity in seconds. Short
	// lifetimes are what make renewal storms: every flow issued in the
	// same tick renews in the same later tick.
	EphIDLifetime uint32 `json:"ephid_lifetime"`
	// RenewLead is how many seconds before expiry a live flow renews.
	RenewLead int `json:"renew_lead"`
	// PoolSlots is each host's EphID pool size: expired idle slots are
	// re-issued, valid idle slots are reused (a pool hit), and arrivals
	// beyond the pool trigger overflow issuance.
	PoolSlots int `json:"pool_slots"`
	// RenewBurst overrides the MS per-host renewal budget (0: policy
	// default).
	RenewBurst int `json:"renew_burst,omitempty"`

	// ChurnFrac is the fraction of hosts replaced per tick: each leave
	// revokes the HID (GC reaps it after the retention window) and a
	// join registers a fresh HID in its place.
	ChurnFrac float64 `json:"churn_frac"`

	// FlashMult, when > 1, models a flash crowd: for FlashTicks ticks
	// starting at FlashTick the diurnal arrival intensity is multiplied
	// by FlashMult, on top of whatever the raised-cosine law gives —
	// the onboarding surge a viral event aims at one AS's MS.
	FlashMult  float64 `json:"flash_mult,omitempty"`
	FlashTick  int     `json:"flash_tick,omitempty"`
	FlashTicks int     `json:"flash_ticks,omitempty"`

	// ComplaintEvery files one inter-domain shutoff complaint every N
	// ticks (0 disables complaints).
	ComplaintEvery int `json:"complaint_every"`
	// ReplayFrac replays that complaint bit-exactly with this
	// probability, exercising the receipt idempotency cache.
	ReplayFrac float64 `json:"replay_frac"`
	// StrikeLimit is the AA's shutoff-strike escalation threshold.
	StrikeLimit int `json:"strike_limit"`

	// GCEvery runs hostdb GC every N ticks (0 disables).
	GCEvery int `json:"gc_every"`
	// DigestEvery flushes the revocation digest every N ticks (0
	// disables).
	DigestEvery int `json:"digest_every"`

	// RecordTrace keeps the logical event trace and reports its hash,
	// for determinism tests. Costs ~9 bytes per event.
	RecordTrace bool `json:"record_trace,omitempty"`
}

// DefaultConfig returns a population run sized for interactive use:
// 10k hosts over a 60-tick compressed day.
func DefaultConfig() Config {
	return Config{
		Hosts:               10_000,
		Ticks:               60,
		Seed:                1,
		PeakSessionsPerHost: 0.01,
		ZipfS:               1.1,
		EphIDLifetime:       20,
		RenewLead:           2,
		PoolSlots:           2,
		ChurnFrac:           0.0005,
		ComplaintEvery:      2,
		ReplayFrac:          0.25,
		StrikeLimit:         3,
		GCEvery:             10,
		DigestEvery:         10,
	}
}

// Validate checks the configuration without running it — the scenario
// DSL rejects bad population specs at load time through it.
func (cfg Config) Validate() error {
	_, err := cfg.normalize()
	return err
}

// normalize validates cfg and fills defaults, returning the effective
// configuration.
func (cfg Config) normalize() (Config, error) {
	if cfg.Hosts <= 0 || cfg.Ticks <= 0 {
		return cfg, fmt.Errorf("%w: hosts %d, ticks %d", ErrBadConfig, cfg.Hosts, cfg.Ticks)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	cfg.Workers = min(cfg.Workers, maxWorkers, cfg.Hosts)
	if cfg.PeakSessionsPerHost <= 0 {
		return cfg, fmt.Errorf("%w: peak rate %v", ErrBadConfig, cfg.PeakSessionsPerHost)
	}
	if cfg.BaseSessionsPerHost <= 0 {
		cfg.BaseSessionsPerHost = cfg.PeakSessionsPerHost / 4
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.ZipfS <= 1 {
		return cfg, fmt.Errorf("%w: zipf s %v must be > 1", ErrBadConfig, cfg.ZipfS)
	}
	if cfg.DiurnalPeriod <= 0 {
		cfg.DiurnalPeriod = cfg.Ticks
	}
	if cfg.EphIDLifetime < 2 {
		return cfg, fmt.Errorf("%w: ephid lifetime %d < 2s", ErrBadConfig, cfg.EphIDLifetime)
	}
	if cfg.RenewLead <= 0 {
		cfg.RenewLead = 1
	}
	if cfg.RenewLead >= int(cfg.EphIDLifetime) {
		return cfg, fmt.Errorf("%w: renew lead %d >= lifetime %d", ErrBadConfig, cfg.RenewLead, cfg.EphIDLifetime)
	}
	if cfg.PoolSlots <= 0 {
		cfg.PoolSlots = 1
	}
	if cfg.ChurnFrac < 0 || cfg.ChurnFrac >= 1 {
		return cfg, fmt.Errorf("%w: churn fraction %v", ErrBadConfig, cfg.ChurnFrac)
	}
	if cfg.FlashMult < 0 || cfg.FlashTick < 0 || cfg.FlashTicks < 0 {
		return cfg, fmt.Errorf("%w: flash crowd mult %v tick %d ticks %d",
			ErrBadConfig, cfg.FlashMult, cfg.FlashTick, cfg.FlashTicks)
	}
	if cfg.FlashMult > 0 && cfg.FlashTicks == 0 {
		return cfg, fmt.Errorf("%w: flash mult %v with zero flash ticks", ErrBadConfig, cfg.FlashMult)
	}
	// Each worker's identity turnover must fit its HID namespace.
	perWorker := cfg.Hosts/cfg.Workers + 1
	turnover := float64(perWorker) * (1 + cfg.ChurnFrac*float64(cfg.Ticks))
	if turnover+16 >= hidSpan {
		return cfg, fmt.Errorf("%w: per-worker identity turnover %.0f exceeds HID namespace %d",
			ErrBadConfig, turnover, hidSpan)
	}
	return cfg, nil
}

// OpStats summarizes one operation class's wall-clock latency
// distribution from the merged per-worker reservoirs.
type OpStats struct {
	Count uint64  `json:"count"`
	P50us float64 `json:"p50_us"`
	P90us float64 `json:"p90_us"`
	P99us float64 `json:"p99_us"`
	MaxUs float64 `json:"max_us"`
}

// Result is a population run's report — the per-tier body of the
// BENCH_e11.json artifact.
type Result struct {
	Config    Config  `json:"config"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// Events counts logical control-plane events (arrivals, renewals,
	// churn operations, complaints); EventsPerSec divides by wall time.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`

	Arrivals uint64 `json:"arrivals"`
	// FlashArrivals is the subset of Arrivals that landed inside the
	// configured flash-crowd window (zero when FlashMult is unset).
	FlashArrivals   uint64  `json:"flash_arrivals,omitempty"`
	PoolHits        uint64  `json:"pool_hits"`
	Issued          uint64  `json:"issued"`
	OverflowIssued  uint64  `json:"overflow_issued"`
	Renewals        uint64  `json:"renewals"`
	RenewDenied     uint64  `json:"renew_denied"`
	RenewDenialRate float64 `json:"renew_denial_rate"`
	// ErrNoEphID counts arrivals or renewals that ended with no usable
	// EphID after every fallback — the E11 gate requires zero.
	ErrNoEphID   uint64 `json:"err_no_ephid"`
	Joins        uint64 `json:"joins"`
	Leaves       uint64 `json:"leaves"`
	ModeledBytes uint64 `json:"modeled_bytes"`

	GCRuns         uint64  `json:"gc_runs"`
	GCReaped       int     `json:"gc_reaped"`
	GCMaxPauseUs   float64 `json:"gc_max_pause_us"`
	GCTotalPauseUs float64 `json:"gc_total_pause_us"`

	Complaints       uint64            `json:"complaints"`
	Replays          uint64            `json:"replays"`
	OffendersRevoked uint64            `json:"offenders_revoked"`
	ReceiptStatus    map[string]uint64 `json:"receipt_status"`
	AcctDuplicates   uint64            `json:"acct_duplicates"`

	DigestFlushes     uint64 `json:"digest_flushes"`
	DigestEntriesLast int    `json:"digest_entries_last"`
	DigestBytes       uint64 `json:"digest_bytes"`

	RenewTracked int `json:"renew_tracked"`
	HostdbHosts  int `json:"hostdb_hosts"`
	HostdbShards int `json:"hostdb_shards"`

	IssueLatency     OpStats `json:"issue_latency"`
	RenewLatency     OpStats `json:"renew_latency"`
	ComplaintLatency OpStats `json:"complaint_latency"`

	PeakRSSBytes uint64 `json:"peak_rss_bytes"`

	TraceHash   string `json:"trace_hash,omitempty"`
	TraceEvents uint64 `json:"trace_events,omitempty"`
}

// hostState is one modeled host: its kHA keys, control EphID, and HID.
// Flow slots live in the worker's flat slot array.
type hostState struct {
	keys crypto.HostASKeys
	ctrl ephid.EphID
	hid  ephid.HID
}

// flowSlot is one pooled EphID: the identifier, its expiry, and the
// virtual second the flow using it ends.
type flowSlot struct {
	id        ephid.EphID
	exp       uint32
	busyUntil int64
}

// renewSched is one scheduled renewal: the flat slot index and the
// expiry the schedule was made for (a mismatch means the slot was
// re-issued since, and the schedule is stale).
type renewSched struct {
	slot int32
	exp  uint32
}

// Trace event kinds.
const (
	evIssue byte = iota + 1
	evPoolHit
	evOverflow
	evRenew
	evRenewDenied
	evNoEphID
	evLeave
	evJoin
)

type traceEvent struct {
	tick uint32
	kind byte
	hid  uint32
}

// reservoirCap bounds each latency reservoir; overflow rotates, like
// the forwarding engine's per-worker samples.
const reservoirCap = 4096

type reservoir struct {
	samples []float64 // microseconds
	idx     int
	count   uint64
	max     float64
}

func (r *reservoir) add(us float64) {
	r.count++
	if us > r.max {
		r.max = us
	}
	if len(r.samples) < reservoirCap {
		r.samples = append(r.samples, us)
		return
	}
	r.samples[r.idx] = us
	r.idx = (r.idx + 1) % reservoirCap
}

// mergeStats combines reservoirs into one OpStats.
func mergeStats(rs ...*reservoir) OpStats {
	var out OpStats
	var all []float64
	for _, r := range rs {
		out.Count += r.count
		if r.max > out.MaxUs {
			out.MaxUs = r.max
		}
		all = append(all, r.samples...)
	}
	if len(all) == 0 {
		return out
	}
	sort.Float64s(all)
	pick := func(p float64) float64 {
		i := int(p * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return all[i]
	}
	out.P50us, out.P90us, out.P99us = pick(0.50), pick(0.90), pick(0.99)
	return out
}

// counters are one worker's tallies, summed into the Result.
type counters struct {
	arrivals, flashArrivals           uint64
	poolHits, issued, overflow        uint64
	renewals, renewDenied, errNoEphID uint64
	joins, leaves, bytes              uint64
}

// worker owns a contiguous host partition and everything those hosts
// do. Workers share only the engines (which are concurrency-safe and
// whose per-HID state is worker-disjoint), so the logical outcome per
// worker is deterministic.
type worker struct {
	id      int
	cfg     *Config
	w       *world
	rng     *rand.Rand
	zipf    *rand.Zipf
	hosts   []hostState
	slots   []flowSlot
	renewAt [][]renewSched // ring buffer indexed by tick
	nextHID uint32
	c       counters
	issue   reservoir
	renew   reservoir
	trace   []traceEvent
}

func (wk *worker) rec(tick int, kind byte, hid ephid.HID) {
	if wk.cfg.RecordTrace {
		wk.trace = append(wk.trace, traceEvent{uint32(tick), kind, uint32(hid)})
	}
}

// setup registers the worker's initial host partition.
func (wk *worker) setup(horizon uint32) {
	entries := make([]hostdb.Entry, len(wk.hosts))
	for i := range wk.hosts {
		hid := ephid.HID(wk.nextHID)
		wk.nextHID++
		h := &wk.hosts[i]
		h.hid = hid
		h.keys = hostKeys(wk.cfg.Seed, hid)
		h.ctrl = wk.w.sealer.Mint(ephid.Payload{HID: hid, ExpTime: horizon})
		entries[i] = hostdb.Entry{HID: hid, Keys: h.keys, RegisteredAt: startTime}
	}
	wk.w.db.PutBatch(entries)
}

// schedule books a renewal for the slot at (expiry - lead), clamped
// into the run.
func (wk *worker) schedule(slot int32, exp uint32, tick int) {
	at := int(int64(exp)-startTime) - wk.cfg.RenewLead
	if at <= tick {
		at = tick + 1
	}
	if at >= wk.cfg.Ticks {
		return
	}
	idx := at % len(wk.renewAt)
	wk.renewAt[idx] = append(wk.renewAt[idx], renewSched{slot: slot, exp: exp})
}

// tick processes one virtual second for this worker's partition.
func (wk *worker) tick(t int) {
	now := wk.w.clock.Load()
	wk.renewals(t, now)
	wk.churn(t, now)
	wk.arrivals(t, now)
}

// renewals drains this tick's renewal bucket: live flows renew their
// EphIDs through the MS (the correlated storm — every slot issued in
// one tick matures here in the same later tick); idle slots lapse.
func (wk *worker) renewals(t int, now int64) {
	idx := t % len(wk.renewAt)
	due := wk.renewAt[idx]
	wk.renewAt[idx] = due[:0]
	for _, sc := range due {
		s := &wk.slots[sc.slot]
		if s.exp != sc.exp {
			continue // slot re-issued since scheduling
		}
		h := &wk.hosts[int(sc.slot)/wk.cfg.PoolSlots]
		if s.busyUntil <= now {
			continue // flow ended; let the identifier lapse
		}
		t0 := time.Now() //apna:wallclock
		c, err := wk.w.issue(h, wk.cfg.EphIDLifetime, &s.id)
		if errors.Is(err, ms.ErrRenewRateLimited) {
			// Denied renewals fall back to plain issuance, which the
			// policy deliberately leaves unthrottled: the flow stays
			// alive, only the identifier-history linkage is cut.
			wk.c.renewDenied++
			wk.rec(t, evRenewDenied, h.hid)
			c, err = wk.w.issue(h, wk.cfg.EphIDLifetime, nil)
		}
		wk.renew.add(float64(time.Since(t0).Nanoseconds()) / 1e3) //apna:wallclock
		if err != nil {
			wk.c.errNoEphID++
			wk.rec(t, evNoEphID, h.hid)
			continue
		}
		wk.c.renewals++
		s.id, s.exp = c.EphID, c.ExpTime
		wk.schedule(sc.slot, c.ExpTime, t)
		wk.rec(t, evRenew, h.hid)
	}
}

// churn replaces ChurnFrac of the partition: the leaver's HID is
// revoked (GC reaps it once the retention window passes) and a fresh
// identity joins in its place, so the modeled population stays constant
// while the identity space turns over.
func (wk *worker) churn(t int, now int64) {
	want := wk.cfg.ChurnFrac * float64(len(wk.hosts))
	n := int(want)
	if wk.rng.Float64() < want-float64(n) {
		n++
	}
	for i := 0; i < n; i++ {
		hostIdx := wk.rng.Intn(len(wk.hosts))
		h := &wk.hosts[hostIdx]
		wk.w.db.RevokeAt(h.hid, now)
		wk.c.leaves++
		wk.rec(t, evLeave, h.hid)

		// Clear the leaver's flow slots; scheduled renewals notice the
		// expiry mismatch and skip.
		for s := hostIdx * wk.cfg.PoolSlots; s < (hostIdx+1)*wk.cfg.PoolSlots; s++ {
			wk.slots[s] = flowSlot{}
		}

		hid := ephid.HID(wk.nextHID)
		wk.nextHID++
		h.hid = hid
		h.keys = hostKeys(wk.cfg.Seed, hid)
		h.ctrl = wk.w.sealer.Mint(ephid.Payload{HID: hid, ExpTime: wk.w.horizon})
		wk.w.db.Put(hostdb.Entry{HID: hid, Keys: h.keys, RegisteredAt: now})
		wk.c.joins++
		wk.rec(t, evJoin, hid)
	}
}

// arrivals draws this tick's session arrivals from the diurnal Poisson
// process and satisfies each from the host's EphID pool or the MS.
func (wk *worker) arrivals(t int, now int64) {
	lam := intensity(wk.cfg.PeakSessionsPerHost, wk.cfg.BaseSessionsPerHost,
		t, wk.cfg.DiurnalPeriod) * float64(len(wk.hosts))
	inFlash := wk.cfg.FlashMult > 0 &&
		t >= wk.cfg.FlashTick && t < wk.cfg.FlashTick+wk.cfg.FlashTicks
	if inFlash {
		lam *= wk.cfg.FlashMult
	}
	n := poisson(wk.rng, lam)
	if inFlash {
		wk.c.flashArrivals += uint64(n)
	}
	for i := 0; i < n; i++ {
		hostIdx := int(wk.zipf.Uint64())
		h := &wk.hosts[hostIdx]
		wk.c.arrivals++
		dur := sampleDuration(wk.rng)
		wk.c.bytes += sampleSize(wk.rng)

		base := hostIdx * wk.cfg.PoolSlots
		idleValid, idleAny := -1, -1
		for s := base; s < base+wk.cfg.PoolSlots; s++ {
			sl := &wk.slots[s]
			if sl.busyUntil > now {
				continue
			}
			if idleAny < 0 {
				idleAny = s
			}
			if int64(sl.exp) > now+1 {
				idleValid = s
				break
			}
		}
		if idleValid >= 0 {
			// Pool hit: a still-valid idle identifier is reused.
			wk.slots[idleValid].busyUntil = now + int64(dur)
			wk.c.poolHits++
			wk.rec(t, evPoolHit, h.hid)
			continue
		}
		t0 := time.Now() //apna:wallclock
		c, err := wk.w.issue(h, wk.cfg.EphIDLifetime, nil)
		wk.issue.add(float64(time.Since(t0).Nanoseconds()) / 1e3) //apna:wallclock
		if err != nil {
			wk.c.errNoEphID++
			wk.rec(t, evNoEphID, h.hid)
			continue
		}
		wk.c.issued++
		if idleAny >= 0 {
			sl := &wk.slots[idleAny]
			sl.id, sl.exp, sl.busyUntil = c.EphID, c.ExpTime, now+int64(dur)
			wk.schedule(int32(idleAny), c.ExpTime, t)
			wk.rec(t, evIssue, h.hid)
		} else {
			// Pool exhausted: the flow runs on an unpooled identifier
			// (used once, never renewed).
			wk.c.overflow++
			wk.rec(t, evOverflow, h.hid)
		}
	}
}

// Run executes the population workload and reports the measurement.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}

	// Partition hosts across workers.
	workers := make([]*worker, cfg.Workers)
	ringLen := int(cfg.EphIDLifetime) + cfg.RenewLead + 2
	per := cfg.Hosts / cfg.Workers
	extra := cfg.Hosts % cfg.Workers
	var setupWG sync.WaitGroup
	for i := range workers {
		n := per
		if i < extra {
			n++
		}
		wk := &worker{
			id:      i,
			cfg:     &cfg,
			w:       w,
			rng:     rand.New(rand.NewSource(cfg.Seed ^ int64(i)<<20 ^ 0x5eed)),
			hosts:   make([]hostState, n),
			slots:   make([]flowSlot, n*cfg.PoolSlots),
			renewAt: make([][]renewSched, ringLen),
			nextHID: uint32(i)*hidSpan + 1,
		}
		wk.zipf = rand.NewZipf(wk.rng, cfg.ZipfS, 1, uint64(max(n-1, 1)))
		workers[i] = wk
		setupWG.Add(1)
		go func() {
			defer setupWG.Done()
			wk.setup(w.horizon)
		}()
	}
	setupWG.Wait()

	comp := newComplainer(w, &cfg)
	res := &Result{Config: cfg, ReceiptStatus: map[string]uint64{}, HostdbShards: w.db.ShardCount()}

	// Persistent workers with a per-tick barrier: the coordinator
	// advances the virtual clock only between ticks, so every engine
	// sees one consistent "now" per tick.
	start := make([]chan int, cfg.Workers)
	var tickWG sync.WaitGroup
	for i, wk := range workers {
		start[i] = make(chan int, 1)
		go func(wk *worker, ch chan int) {
			for t := range ch {
				wk.tick(t)
				tickWG.Done()
			}
		}(wk, start[i])
	}

	retention := int64(cfg.EphIDLifetime)
	t0 := time.Now() //apna:wallclock
	for t := 0; t < cfg.Ticks; t++ {
		w.clock.Store(startTime + int64(t))
		tickWG.Add(cfg.Workers)
		for i := range start {
			start[i] <- t
		}
		tickWG.Wait()

		now := w.clock.Load()
		if cfg.ComplaintEvery > 0 && t%cfg.ComplaintEvery == 0 {
			comp.cycle(now)
		}
		if cfg.GCEvery > 0 && t%cfg.GCEvery == cfg.GCEvery-1 {
			g0 := time.Now() //apna:wallclock
			res.GCReaped += w.db.GC(now, retention)
			pause := float64(time.Since(g0).Nanoseconds()) / 1e3 //apna:wallclock
			res.GCRuns++
			res.GCTotalPauseUs += pause
			if pause > res.GCMaxPauseUs {
				res.GCMaxPauseUs = pause
			}
		}
		if cfg.DigestEvery > 0 && t%cfg.DigestEvery == cfg.DigestEvery-1 {
			res.DigestEntriesLast = w.acct.FlushDigest()
			res.DigestFlushes++
		}
	}
	elapsed := time.Since(t0) //apna:wallclock
	for i := range start {
		close(start[i])
	}

	// Merge.
	issueRes := make([]*reservoir, 0, len(workers))
	renewRes := make([]*reservoir, 0, len(workers))
	for _, wk := range workers {
		res.Arrivals += wk.c.arrivals
		res.FlashArrivals += wk.c.flashArrivals
		res.PoolHits += wk.c.poolHits
		res.Issued += wk.c.issued
		res.OverflowIssued += wk.c.overflow
		res.Renewals += wk.c.renewals
		res.RenewDenied += wk.c.renewDenied
		res.ErrNoEphID += wk.c.errNoEphID
		res.Joins += wk.c.joins
		res.Leaves += wk.c.leaves
		res.ModeledBytes += wk.c.bytes
		issueRes = append(issueRes, &wk.issue)
		renewRes = append(renewRes, &wk.renew)
	}
	res.IssueLatency = mergeStats(issueRes...)
	res.RenewLatency = mergeStats(renewRes...)
	res.ComplaintLatency = mergeStats(&comp.lat)
	if att := res.Renewals + res.RenewDenied; att > 0 {
		res.RenewDenialRate = float64(res.RenewDenied) / float64(att)
	}
	res.Complaints = comp.complaints
	res.Replays = comp.replays
	res.OffendersRevoked = comp.revoked
	res.ReceiptStatus = comp.status
	res.AcctDuplicates = w.acct.Stats().RequestsDuplicate
	res.DigestBytes = w.digestBytes.Load()
	res.RenewTracked = w.ms.RenewTracked()
	res.HostdbHosts = w.db.Len()
	res.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	res.Events = res.Arrivals + res.Renewals + res.RenewDenied +
		res.Joins + res.Leaves + res.Complaints + res.Replays
	if s := elapsed.Seconds(); s > 0 {
		res.EventsPerSec = float64(res.Events) / s
	}
	res.PeakRSSBytes = PeakRSS()

	if cfg.RecordTrace {
		h := sha256.New()
		var buf [9]byte
		var total uint64
		record := func(ev traceEvent) {
			binary.BigEndian.PutUint32(buf[0:], ev.tick)
			buf[4] = ev.kind
			binary.BigEndian.PutUint32(buf[5:], ev.hid)
			h.Write(buf[:])
			total++
		}
		for _, wk := range workers {
			for _, ev := range wk.trace {
				record(ev)
			}
		}
		for _, ev := range comp.trace {
			record(ev)
		}
		res.TraceHash = hex.EncodeToString(h.Sum(nil))
		res.TraceEvents = total
	}
	return res, nil
}

// complainer drives the inter-domain complaint path from the
// coordinator: it keeps a current offender host (registered in the
// reserved HID range), issues it a fresh EphID per complaint, builds
// the MACed evidence frame and the victim-AS-signed ShutoffRequest, and
// feeds it to the accountability engine — replaying a fraction
// bit-exactly to exercise the receipt idempotency cache. Strike
// escalation revokes the offender after StrikeLimit shutoffs, at which
// point issuance fails and a fresh offender is registered.
type complainer struct {
	w       *world
	cfg     *Config
	rng     *rand.Rand
	seq     uint64
	nextHID uint32
	off     *hostState
	payload []byte

	lat        reservoir
	complaints uint64
	replays    uint64
	revoked    uint64
	status     map[string]uint64
	trace      []traceEvent
}

func newComplainer(w *world, cfg *Config) *complainer {
	return &complainer{
		w: w, cfg: cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x0c0c0c)),
		nextHID: offenderHIDBase,
		payload: make([]byte, 64),
		status:  map[string]uint64{},
	}
}

func (cp *complainer) newOffender(now int64) *hostState {
	hid := ephid.HID(cp.nextHID)
	cp.nextHID++
	h := &hostState{hid: hid, keys: hostKeys(cp.cfg.Seed, hid)}
	h.ctrl = cp.w.sealer.Mint(ephid.Payload{HID: hid, ExpTime: cp.w.horizon})
	cp.w.db.Put(hostdb.Entry{HID: hid, Keys: h.keys, RegisteredAt: now})
	return h
}

func (cp *complainer) cycle(now int64) {
	if cp.off == nil {
		cp.off = cp.newOffender(now)
	}
	// A fresh offending EphID per complaint: each shutoff lands a
	// strike until the AA escalates and revokes the host.
	c, err := cp.w.issue(cp.off, cp.cfg.EphIDLifetime, nil)
	if err != nil {
		// The offender's HID was revoked by strike escalation — the
		// MS refuses it service. Replace it.
		cp.revoked++
		cp.off = cp.newOffender(now)
		if c, err = cp.w.issue(cp.off, cp.cfg.EphIDLifetime, nil); err != nil {
			return
		}
	}

	cp.seq++
	p := wire.Packet{
		Header: wire.Header{
			NextProto: wire.ProtoSession, HopLimit: wire.DefaultHopLimit,
			Nonce:  cp.seq,
			SrcAID: localAID, DstAID: victimAID,
			SrcEphID: c.EphID, DstEphID: cp.w.victimCert.EphID,
		},
		Payload: cp.payload,
	}
	frame, err := p.Encode()
	if err != nil {
		return
	}
	pm, err := wire.NewPacketMAC(cp.off.keys.MAC[:])
	if err != nil {
		return
	}
	pm.Apply(frame)

	complaint := accountability.NewComplaint(frame, cp.w.victimCert, c, cp.w.victimHostSigner)
	enc, err := complaint.Encode()
	if err != nil {
		return
	}
	sr := &accountability.ShutoffRequest{
		Origin: victimAID, Seq: cp.seq, IssuedAt: now, Complaint: enc,
	}
	sr.Sign(cp.w.victimASSigner)
	raw := sr.Encode()

	t0 := time.Now() //apna:wallclock
	r, err := cp.w.acct.HandleShutoffRequest(raw)
	cp.lat.add(float64(time.Since(t0).Nanoseconds()) / 1e3) //apna:wallclock
	cp.complaints++
	if err != nil {
		cp.status["error"]++
	} else {
		cp.status[r.Status.String()]++
		if cp.cfg.RecordTrace {
			cp.trace = append(cp.trace,
				traceEvent{uint32(now - startTime), byte(0x80 | byte(r.Status)), uint32(cp.off.hid)})
		}
	}
	if cp.rng.Float64() < cp.cfg.ReplayFrac {
		if _, err := cp.w.acct.HandleShutoffRequest(raw); err == nil {
			cp.replays++
		}
	}
}

// PeakRSS reports the process's peak resident set in bytes (VmHWM on
// Linux), falling back to the Go runtime's Sys estimate elsewhere —
// the "does 10^6 hosts fit in one process" number of the E11 artifact.
func PeakRSS() uint64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Sys
}

// Fprint renders a compact human-readable summary.
func (r *Result) Fprint(out io.Writer) {
	fmt.Fprintf(out, "population: %d hosts, %d ticks, %d workers — %.0f events/s (%.1f ms wall)\n",
		r.Config.Hosts, r.Config.Ticks, r.Config.Workers, r.EventsPerSec, r.ElapsedMs)
	fmt.Fprintf(out, "  arrivals %d (pool hits %d, issued %d, overflow %d), renewals %d (denied %d, rate %.4f)\n",
		r.Arrivals, r.PoolHits, r.Issued, r.OverflowIssued, r.Renewals, r.RenewDenied, r.RenewDenialRate)
	fmt.Fprintf(out, "  err_no_ephid %d, churn %d/%d join/leave, gc reaped %d (max pause %.0fµs)\n",
		r.ErrNoEphID, r.Joins, r.Leaves, r.GCReaped, r.GCMaxPauseUs)
	fmt.Fprintf(out, "  complaints %d (replays %d, offenders revoked %d), digest %d flushes / %d B\n",
		r.Complaints, r.Replays, r.OffendersRevoked, r.DigestFlushes, r.DigestBytes)
	fmt.Fprintf(out, "  issuance p50 %.0fµs p99 %.0fµs max %.0fµs; renewal p99 %.0fµs; peak RSS %.1f MiB\n",
		r.IssueLatency.P50us, r.IssueLatency.P99us, r.IssueLatency.MaxUs,
		r.RenewLatency.P99us, float64(r.PeakRSSBytes)/(1<<20))
}

// issue is the full host→MS round trip: encode and encrypt the request
// under the host's kHA key, run Figure 3 in the service, decrypt and
// parse the reply. prev non-nil makes it a renewal.
func (w *world) issue(h *hostState, lifetime uint32, prev *ephid.EphID) (*cert.Cert, error) {
	req := ms.Request{Kind: ephid.KindData, Lifetime: lifetime}
	if prev != nil {
		req.Flags = ms.ReqFlagRenew
		req.Prev = *prev
	}
	// The model never opens sessions, so the bound key material only
	// has to be host-stable, not usable.
	binary.BigEndian.PutUint32(req.DHPub[:], uint32(h.hid))
	binary.BigEndian.PutUint32(req.SigPub[:], uint32(h.hid))
	ct, err := ms.EncodeRequest(h.keys.Enc[:], h.ctrl, &req)
	if err != nil {
		return nil, err
	}
	reply, err := w.ms.HandleRequest(h.ctrl, ct)
	if err != nil {
		return nil, err
	}
	return ms.DecodeReply(h.keys.Enc[:], h.ctrl, reply)
}
