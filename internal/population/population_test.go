package population

import (
	"math"
	"math/rand"
	"testing"
)

// smallConfig is a population run small enough to execute twice in a
// unit test but busy enough to cross every path: renewal storms
// (lifetime 6s inside 30 ticks), churn, complaints with replays, GC and
// digest flushes.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Hosts = 600
	cfg.Ticks = 30
	cfg.Workers = 4
	cfg.EphIDLifetime = 6
	cfg.RenewLead = 1
	cfg.ChurnFrac = 0.01
	cfg.PeakSessionsPerHost = 0.05
	cfg.GCEvery = 5
	cfg.DigestEvery = 5
	cfg.RecordTrace = true
	return cfg
}

// logical strips a Result to its deterministic fields (wall-clock
// measurements excluded).
type logical struct {
	arrivals, poolHits, issued, overflow, renewals, denied, noEphID uint64
	joins, leaves, bytes, complaints, replays, revoked, dups        uint64
	gcReaped, digestLast, hostdb                                    int
	digestBytes, events, traceEvents                                uint64
	trace                                                           string
}

func logicalOf(r *Result) logical {
	return logical{
		arrivals: r.Arrivals, poolHits: r.PoolHits, issued: r.Issued,
		overflow: r.OverflowIssued, renewals: r.Renewals, denied: r.RenewDenied,
		noEphID: r.ErrNoEphID, joins: r.Joins, leaves: r.Leaves,
		bytes: r.ModeledBytes, complaints: r.Complaints, replays: r.Replays,
		revoked: r.OffendersRevoked, dups: r.AcctDuplicates,
		gcReaped: r.GCReaped, digestLast: r.DigestEntriesLast, hostdb: r.HostdbHosts,
		digestBytes: r.DigestBytes, events: r.Events, traceEvents: r.TraceEvents,
		trace: r.TraceHash,
	}
}

// TestDeterministicTrace is the satellite's core claim: the same seed
// yields the identical logical event trace and counters, run to run,
// despite the workers running on real concurrent cores.
func TestDeterministicTrace(t *testing.T) {
	cfg := smallConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a.TraceHash == "" || a.TraceEvents == 0 {
		t.Fatalf("no trace recorded: hash %q, events %d", a.TraceHash, a.TraceEvents)
	}
	if la, lb := logicalOf(a), logicalOf(b); la != lb {
		t.Fatalf("same seed diverged:\n run1 %+v\n run2 %+v", la, lb)
	}

	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if c.TraceHash == a.TraceHash {
		t.Fatalf("different seeds produced the same trace hash %s", a.TraceHash)
	}
}

// TestRunExercisesControlPlane checks the workload actually reaches
// every engine the subsystem claims to drive.
func TestRunExercisesControlPlane(t *testing.T) {
	r, err := Run(smallConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.ErrNoEphID != 0 {
		t.Errorf("ErrNoEphID = %d, want 0", r.ErrNoEphID)
	}
	if r.Issued == 0 || r.Arrivals == 0 {
		t.Errorf("no issuance traffic: arrivals %d issued %d", r.Arrivals, r.Issued)
	}
	if r.Renewals == 0 {
		t.Errorf("no renewals — storm path untested")
	}
	if r.PoolHits == 0 {
		t.Errorf("no pool hits — pool path untested")
	}
	if r.Leaves == 0 || r.Joins != r.Leaves {
		t.Errorf("churn mismatch: joins %d leaves %d", r.Joins, r.Leaves)
	}
	if r.GCReaped == 0 {
		t.Errorf("GC reaped nothing despite churn")
	}
	if r.Complaints == 0 || r.ReceiptStatus["revoked"] == 0 {
		t.Errorf("complaint path idle: %d complaints, statuses %v", r.Complaints, r.ReceiptStatus)
	}
	if r.Replays > 0 && r.AcctDuplicates == 0 {
		t.Errorf("%d replays but the receipt cache saw no duplicates", r.Replays)
	}
	if r.OffendersRevoked == 0 {
		t.Errorf("strike escalation never revoked an offender")
	}
	if r.DigestFlushes == 0 || r.DigestBytes == 0 {
		t.Errorf("digest path idle: %d flushes, %d bytes", r.DigestFlushes, r.DigestBytes)
	}
	if r.HostdbHosts == 0 || r.HostdbShards < 64 {
		t.Errorf("hostdb state: %d hosts, %d shards", r.HostdbHosts, r.HostdbShards)
	}
	if r.IssueLatency.Count == 0 || r.IssueLatency.P99us <= 0 {
		t.Errorf("issue latency reservoir empty: %+v", r.IssueLatency)
	}
	if r.PeakRSSBytes == 0 {
		t.Errorf("peak RSS not measured")
	}
}

// TestParetoDurationMoments checks the duration sampler against the
// mixture's analytic mean within tolerance: 95% exponential(45s) plus
// 5% Pareto(1.3, 60s) truncated at 6h.
func TestParetoDurationMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200_000
	var sum float64
	deepTail := 0
	const tailCut = 1000.0 // far beyond the exponential's reach
	for i := 0; i < n; i++ {
		d := sampleDuration(rng)
		sum += float64(d)
		if float64(d) > tailCut {
			deepTail++
		}
	}
	mean := sum / n

	// Truncated-Pareto mean: E[min(X, cap)] for X ~ Pareto(a, xm) is
	// xm*a/(a-1) - (cap/(a-1))*(xm/cap)^a.
	a, xm, cap := tortoiseAlpha, tortoiseXmS, tortoiseCapS
	tortoiseMean := paretoMean(a, xm) - cap/(a-1)*math.Pow(xm/cap, a)
	want := dragonflyFrac*dragonflyMeanS + (1-dragonflyFrac)*tortoiseMean
	if rel := math.Abs(mean-want) / want; rel > 0.10 {
		t.Errorf("duration mean %.1fs, want %.1fs ±10%% (rel err %.3f)", mean, want, rel)
	}
	// Deep-tail mass comes only from the Pareto component:
	// P(D > c) = (1 - dragonflyFrac) * (xm/c)^alpha.
	frac := float64(deepTail) / n
	wantTail := (1 - dragonflyFrac) * math.Pow(tortoiseXmS/tailCut, tortoiseAlpha)
	if frac < wantTail/2 || frac > wantTail*2 {
		t.Errorf("deep-tail fraction %.5f, want ~%.5f (×/÷2)", frac, wantTail)
	}
}

// TestParetoSizeMoments checks the flow-size sampler's mean against the
// truncated Pareto closed form.
func TestParetoSizeMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 500_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(sampleSize(rng))
	}
	mean := sum / n
	a, xm, cap := sizeAlpha, float64(sizeXmB), float64(sizeCapB)
	want := paretoMean(a, xm) - cap/(a-1)*math.Pow(xm/cap, a)
	if rel := math.Abs(mean-want) / want; rel > 0.10 {
		t.Errorf("size mean %.0fB, want %.0fB ±10%% (rel err %.3f)", mean, want, rel)
	}
}

// TestDiurnalIntensity checks the raised-cosine curve's shape: the peak
// sits at 14/24 of the period, the trough half a period away, and the
// peak-to-trough ratio matches peak/base.
func TestDiurnalIntensity(t *testing.T) {
	const period = 86_400
	peakTick := period * 14 / 24
	troughTick := period * 2 / 24
	peak := intensity(4.0, 1.0, peakTick, period)
	trough := intensity(4.0, 1.0, troughTick, period)
	if math.Abs(peak-4.0) > 1e-6 {
		t.Errorf("intensity at peak hour = %v, want 4.0", peak)
	}
	if math.Abs(trough-1.0) > 1e-6 {
		t.Errorf("intensity at trough hour = %v, want 1.0", trough)
	}
	for tick := 0; tick < period; tick += 600 {
		v := intensity(4.0, 1.0, tick, period)
		if v < 1.0-1e-9 || v > 4.0+1e-9 {
			t.Fatalf("intensity(%d) = %v outside [base, peak]", tick, v)
		}
	}
}

// TestPoissonMoments checks the Poisson sampler's mean in both regimes
// (Knuth below the normal-approximation threshold, normal above).
func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, lambda := range []float64{2.5, 200} {
		const n = 100_000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / n
		if rel := math.Abs(mean-lambda) / lambda; rel > 0.05 {
			t.Errorf("poisson(%v) mean %.2f (rel err %.3f)", lambda, mean, rel)
		}
	}
}

// TestFlashCrowd checks the onboarding-surge knob: a flash window
// multiplies the arrival intensity only inside [FlashTick,
// FlashTick+FlashTicks), the surge is counted separately, and the run
// stays bit-deterministic under a fixed seed.
func TestFlashCrowd(t *testing.T) {
	base := smallConfig()
	calm, err := Run(base)
	if err != nil {
		t.Fatalf("calm run: %v", err)
	}

	cfg := base
	cfg.FlashMult = 8
	cfg.FlashTick = 10
	cfg.FlashTicks = 5
	hot, err := Run(cfg)
	if err != nil {
		t.Fatalf("flash run: %v", err)
	}
	if hot.FlashArrivals == 0 {
		t.Fatal("flash window produced no arrivals")
	}
	if hot.Arrivals <= calm.Arrivals {
		t.Fatalf("flash crowd did not raise arrivals: calm %d, flash %d",
			calm.Arrivals, hot.Arrivals)
	}
	if calm.FlashArrivals != 0 {
		t.Fatalf("calm run counted %d flash arrivals", calm.FlashArrivals)
	}
	// The surge must dominate its window: 5 ticks at 8× the diurnal law
	// should exceed the calm run's busiest-possible 5 ticks.
	if hot.FlashArrivals <= calm.Arrivals/uint64(base.Ticks)*5 {
		t.Errorf("surge too small to be a flash crowd: %d in-window arrivals vs %d calm total",
			hot.FlashArrivals, calm.Arrivals)
	}

	again, err := Run(cfg)
	if err != nil {
		t.Fatalf("flash rerun: %v", err)
	}
	if la, lb := logicalOf(hot), logicalOf(again); la != lb {
		t.Fatalf("flash run nondeterministic:\n run1 %+v\n run2 %+v", la, lb)
	}
	if again.FlashArrivals != hot.FlashArrivals {
		t.Fatalf("flash arrivals diverged: %d vs %d", hot.FlashArrivals, again.FlashArrivals)
	}
}

// TestConfigValidation covers normalize's rejection surface.
func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	bad := []func(*Config){
		func(c *Config) { c.Hosts = 0 },
		func(c *Config) { c.Ticks = 0 },
		func(c *Config) { c.PeakSessionsPerHost = 0 },
		func(c *Config) { c.ZipfS = 0.5 },
		func(c *Config) { c.EphIDLifetime = 1 },
		func(c *Config) { c.RenewLead = 30; c.EphIDLifetime = 20 },
		func(c *Config) { c.ChurnFrac = 1.5 },
		func(c *Config) { c.FlashMult = -1 },
		func(c *Config) { c.FlashMult = 3; c.FlashTicks = 0 },
		func(c *Config) { c.FlashMult = 3; c.FlashTicks = 5; c.FlashTick = -1 },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := cfg.normalize(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := base.normalize(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
