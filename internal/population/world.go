package population

import (
	"crypto/sha256"
	"encoding/binary"
	"sync/atomic"

	"apna/internal/aa"
	"apna/internal/accountability"
	"apna/internal/border"
	"apna/internal/cert"
	"apna/internal/crypto"
	"apna/internal/ephid"
	"apna/internal/hostdb"
	"apna/internal/ms"
	"apna/internal/rpki"
	"apna/internal/wire"
)

// AS identifiers of the modeled world: localAID is the AS under test
// (its MS, hostdb, AA and accountability engine take the load); victim
// AID is a minimal second AS that exists so complaints arrive over the
// inter-domain path, signed by a foreign AS key, the way they would at
// an internet border.
const (
	localAID  ephid.AID = 100
	victimAID ephid.AID = 200
)

// startTime is the virtual epoch, matching the rest of the repo's
// fixtures.
const startTime int64 = 1_000_000

// world is the control-plane instance the population drives: every
// engine of the AS under test, wired exactly as the facade wires them,
// but without simulated hosts or a network — workers call the engines
// directly, which is what lets 10^6–10^7 modeled hosts fit in one
// process.
type world struct {
	clock  atomic.Int64
	db     *hostdb.DB
	sealer *ephid.Sealer
	secret *crypto.ASSecret
	ms     *ms.Service
	agent  *aa.Agent
	acct   *accountability.Engine
	router *border.Router
	// horizon is the control-EphID expiry: safely past the run, so
	// control identifiers never lapse mid-measurement.
	horizon uint32

	// Victim-AS materials for building complaints: the victim AS's
	// RPKI-certified signer (signs ShutoffRequests), one victim host
	// with a certificate issued by that AS, and the signer holding the
	// certificate's key.
	victimASSigner   *crypto.Signer
	victimCert       *cert.Cert
	victimHostSigner *crypto.Signer

	// digestBytes accumulates the wire size of every flushed digest
	// (the engine's SetSend hook feeds it) — the digest-size metric.
	digestBytes atomic.Uint64
}

// seedBytes derives a 32-byte deterministic secret from the run seed
// and a domain label, so every key in the world is a pure function of
// the configuration.
func seedBytes(seed int64, label string) []byte {
	h := sha256.New()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(label))
	return h.Sum(nil)
}

// shardCountFor sizes the hostdb for a population: one shard per ~4k
// hosts so writer contention under churn stays flat as the host count
// grows, clamped to [DefaultShardCount, 4096] and rounded up to a power
// of two (NewSharded's contract).
func shardCountFor(hosts int) int {
	n := hostdb.DefaultShardCount
	for n < 4096 && n*4096 < hosts {
		n <<= 1
	}
	return n
}

// newWorld builds the AS under test and the victim AS from the seed.
func newWorld(cfg Config) (*world, error) {
	w := &world{}
	w.clock.Store(startTime)
	now := func() int64 { return w.clock.Load() }

	secret, err := crypto.ASSecretFromBytes(seedBytes(cfg.Seed, "as/secret")[:crypto.SymKeySize])
	if err != nil {
		return nil, err
	}
	w.secret = secret
	w.sealer, err = ephid.NewSealer(secret)
	if err != nil {
		return nil, err
	}
	w.db, err = hostdb.NewSharded(shardCountFor(cfg.Hosts))
	if err != nil {
		return nil, err
	}
	signer, err := crypto.SignerFromSeed(seedBytes(cfg.Seed, "as/signer"))
	if err != nil {
		return nil, err
	}
	dh, err := crypto.KeyPairFromSeed(seedBytes(cfg.Seed, "as/dh"))
	if err != nil {
		return nil, err
	}

	// Victim AS: its own secret, sealer, RPKI-certified signer, and an
	// agent EphID for the digest peer registration.
	vSecret, err := crypto.ASSecretFromBytes(seedBytes(cfg.Seed, "victim/secret")[:crypto.SymKeySize])
	if err != nil {
		return nil, err
	}
	vSealer, err := ephid.NewSealer(vSecret)
	if err != nil {
		return nil, err
	}
	w.victimASSigner, err = crypto.SignerFromSeed(seedBytes(cfg.Seed, "victim/signer"))
	if err != nil {
		return nil, err
	}
	vDH, err := crypto.KeyPairFromSeed(seedBytes(cfg.Seed, "victim/dh"))
	if err != nil {
		return nil, err
	}

	// One RPKI authority certifies both ASes into a shared trust store.
	authority, err := rpki.NewAuthority()
	if err != nil {
		return nil, err
	}
	trust := rpki.NewTrustStore(authority.PublicKey())
	horizon := startTime + int64(cfg.Ticks) + 365*24*3600
	w.horizon = uint32(horizon)
	for _, as := range []struct {
		aid    ephid.AID
		sigPub []byte
		dhPub  []byte
	}{
		{localAID, signer.PublicKey(), dh.PublicKey()},
		{victimAID, w.victimASSigner.PublicKey(), vDH.PublicKey()},
	} {
		rec, err := authority.Certify(as.aid, as.sigPub, as.dhPub, horizon)
		if err != nil {
			return nil, err
		}
		if err := trust.Add(rec); err != nil {
			return nil, err
		}
	}

	// Control-plane engines of the AS under test. The AA's control
	// EphID is minted directly (the RS bootstrap analogue) with an
	// expiry past the run.
	aaEphID := w.sealer.Mint(ephid.Payload{HID: 1, ExpTime: uint32(horizon)})
	policy := ms.DefaultPolicy()
	policy.DefaultLifetime = cfg.EphIDLifetime
	policy.MaxLifetime = max(policy.MaxLifetime, cfg.EphIDLifetime)
	if cfg.RenewBurst > 0 {
		policy.RenewBurst = cfg.RenewBurst
	}
	w.ms = ms.New(localAID, w.sealer, signer, w.db, policy, aaEphID, now)

	w.router, err = border.New(localAID, w.sealer, w.db, secret, now)
	if err != nil {
		return nil, err
	}
	w.router.SetRoutes(nil)

	w.agent = aa.New(aa.Config{AID: localAID, StrikeLimit: cfg.StrikeLimit},
		w.sealer, w.db, secret, trust, now)
	w.agent.AddRouter(w.router)

	w.acct = accountability.New(accountability.Config{
		AID: localAID, Signer: signer, Trust: trust, Agent: w.agent, Now: now,
	})
	w.acct.AddRouter(w.router)
	w.agent.SetRevocationHook(w.acct.NoteRevoked)
	// The transport only has to account bytes: digests leave for the
	// victim AS's agent, and the population measures how big they got.
	w.acct.SetSend(func(_ wire.Endpoint, payload []byte) error {
		w.digestBytes.Add(uint64(len(payload)))
		return nil
	})

	// The victim host: a certificate issued by the victim AS, with a
	// signing key we hold so complaints carry a valid victim signature.
	w.victimHostSigner, err = crypto.SignerFromSeed(seedBytes(cfg.Seed, "victim/host/signer"))
	if err != nil {
		return nil, err
	}
	vHostDH, err := crypto.KeyPairFromSeed(seedBytes(cfg.Seed, "victim/host/dh"))
	if err != nil {
		return nil, err
	}
	victimEphID := vSealer.Mint(ephid.Payload{HID: 1, ExpTime: uint32(horizon)})
	vAgentEphID := vSealer.Mint(ephid.Payload{HID: 2, ExpTime: uint32(horizon)})
	w.victimCert = &cert.Cert{
		Kind: ephid.KindData, EphID: victimEphID, ExpTime: uint32(horizon),
		AID: victimAID, AAEphID: vAgentEphID,
	}
	copy(w.victimCert.DHPub[:], vHostDH.PublicKey())
	copy(w.victimCert.SigPub[:], w.victimHostSigner.PublicKey())
	w.victimCert.Sign(w.victimASSigner)

	w.acct.RegisterPeer(victimAID, vAgentEphID)
	return w, nil
}

// hostKeys derives one modeled host's kHA key pair deterministically
// from the run seed and its HID.
func hostKeys(seed int64, hid ephid.HID) crypto.HostASKeys {
	var b [12]byte
	binary.BigEndian.PutUint64(b[:8], uint64(seed))
	binary.BigEndian.PutUint32(b[8:], uint32(hid))
	return crypto.DeriveHostASKeys(b[:])
}
