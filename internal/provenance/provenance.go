// Package provenance stamps benchmark artifacts with where they came
// from: commit hash, configuration digest, seed, toolchain and
// timestamp. Every BENCH_*.json artifact (E8–E11) embeds one Block so
// future cross-commit comparison tooling — the ROADMAP's m5gate-style
// trend gate — has stable, self-describing inputs instead of having to
// reconstruct run conditions from CI metadata.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Block is the provenance record embedded in benchmark artifacts.
type Block struct {
	// Commit is the VCS revision the binary was built from ("unknown"
	// when the build carries no VCS stamp and no CI environment names
	// one).
	Commit string `json:"commit"`
	// Dirty reports uncommitted modifications at build time (only
	// meaningful when the commit came from the build info).
	Dirty bool `json:"dirty,omitempty"`
	// Seed is the experiment's base seed.
	Seed int64 `json:"seed"`
	// ConfigHash is the SHA-256 of the experiment configuration's JSON
	// encoding: two artifacts compare like-for-like only if it matches.
	ConfigHash string `json:"config_hash"`
	// GoVersion, OS, Arch and CPUs describe the toolchain and machine.
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	// Timestamp is the collection time in RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
}

// Comparable reports whether two blocks describe like-for-like runs:
// both carry a configuration digest and the digests match. It is the
// trend gate's admission rule — artifacts from different
// configurations must never be compared, only skipped.
func (b Block) Comparable(o Block) bool {
	return b.ConfigHash != "" && b.ConfigHash == o.ConfigHash
}

// ShortConfigHash returns the first 12 hex digits of the config hash
// for logs and reports ("" stays "").
func (b Block) ShortConfigHash() string {
	if len(b.ConfigHash) <= 12 {
		return b.ConfigHash
	}
	return b.ConfigHash[:12]
}

// Collect builds the provenance block for one experiment run. config
// is the experiment's configuration struct; its JSON encoding is
// hashed, never embedded, so the block stays one line regardless of
// config size.
func Collect(seed int64, config any) Block {
	b := Block{
		Seed:      seed,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339), //apna:wallclock
	}
	b.Commit, b.Dirty = commit()
	if raw, err := json.Marshal(config); err == nil {
		sum := sha256.Sum256(raw)
		b.ConfigHash = hex.EncodeToString(sum[:])
	}
	return b
}

// commit resolves the build's VCS revision: the Go build info when the
// binary was built inside a checkout, else the revision CI advertises
// (GITHUB_SHA), else "unknown". `go run` from a work tree carries the
// VCS stamp, so CI's bench jobs get real hashes either way.
func commit() (rev string, dirty bool) {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if rev == "" {
		rev = os.Getenv("GITHUB_SHA")
	}
	if rev == "" {
		rev = "unknown"
	}
	return rev, dirty
}
