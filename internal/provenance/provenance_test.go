package provenance

import "testing"

func TestCollect(t *testing.T) {
	type cfg struct {
		Hosts int `json:"hosts"`
	}
	a := Collect(7, cfg{Hosts: 100})
	if a.Seed != 7 || a.Commit == "" || a.GoVersion == "" || a.Timestamp == "" || a.CPUs <= 0 {
		t.Fatalf("incomplete block: %+v", a)
	}
	if len(a.ConfigHash) != 64 {
		t.Fatalf("config hash %q is not a sha256 hex digest", a.ConfigHash)
	}
	// Same config → same hash; different config → different hash.
	if b := Collect(7, cfg{Hosts: 100}); b.ConfigHash != a.ConfigHash {
		t.Errorf("identical configs hashed differently: %s vs %s", a.ConfigHash, b.ConfigHash)
	}
	if c := Collect(7, cfg{Hosts: 200}); c.ConfigHash == a.ConfigHash {
		t.Errorf("distinct configs share hash %s", a.ConfigHash)
	}
}
