// Package registry implements the Registry Service (RS) — the AS entity
// that authenticates hosts and bootstraps them into the network (paper
// Section IV-B, Figure 2).
//
// During bootstrap the RS (1) authenticates the subscriber, (2) derives
// the host<->AS key pair kHA from an X25519 exchange between the host's
// key and the AS's key, (3) assigns the host a unique HID, (4) issues
// the host's control EphID, (5) publishes the host's record to the AS
// infrastructure (the shared host_info database), and (6) hands the host
// the signed bootstrap information plus the certificates of the AS's
// internal services (MS, DNS).
//
// The RS is also where the paper's identity-minting defence lives
// (Section VI-A): HIDs are only assigned to authenticated subscribers,
// one live HID per subscriber; requesting a new HID revokes the previous
// one and all its EphIDs.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"apna/internal/cert"
	"apna/internal/crypto"
	"apna/internal/ephid"
	"apna/internal/hostdb"
)

// Errors returned by the registry.
var (
	ErrAuthFailed = errors.New("registry: authentication failed")
	ErrBadHostKey = errors.New("registry: malformed host public key")
	ErrExhausted  = errors.New("registry: HID space exhausted")
	ErrBadIDInfo  = errors.New("registry: id_info verification failed")
	ErrNoService  = errors.New("registry: service certificates not installed")
)

// Authenticator abstracts the AS's subscriber authentication — the
// paper leaves the mechanism open ("well-established authentication
// protocols exist", citing Diameter and RADIUS). Authenticate returns a
// stable subscriber identity for a credential.
type Authenticator interface {
	Authenticate(credential []byte) (subscriber string, err error)
}

// CredentialTable is a static credential->subscriber table, the
// simulation's stand-in for a RADIUS backend.
type CredentialTable map[string]string

// Authenticate implements Authenticator.
func (t CredentialTable) Authenticate(credential []byte) (string, error) {
	sub, ok := t[string(credential)]
	if !ok {
		return "", ErrAuthFailed
	}
	return sub, nil
}

// IDInfo is the signed bootstrap blob id_info = {EphID_ctrl, ExpTime}
// signed with K-_AS (Figure 2). The host verifies it against the AS key
// from the trust store before using the control EphID.
type IDInfo struct {
	ControlEphID ephid.EphID
	ExpTime      uint32
	Signature    [crypto.SignatureSize]byte
}

const (
	idInfoTBS = ephid.Size + 4
	// IDInfoSize is the wire size of a signed IDInfo.
	IDInfoSize = idInfoTBS + crypto.SignatureSize

	idInfoLabel = "apna/v1/idinfo"
)

func (i *IDInfo) appendTBS(dst []byte) []byte {
	dst = append(dst, i.ControlEphID[:]...)
	return binary.BigEndian.AppendUint32(dst, i.ExpTime)
}

// Verify checks the AS signature over the IDInfo.
func (i *IDInfo) Verify(asSigPub []byte) error {
	if !crypto.Verify(asSigPub, idInfoLabel, i.appendTBS(nil), i.Signature[:]) {
		return ErrBadIDInfo
	}
	return nil
}

// MarshalBinary encodes the signed IDInfo.
func (i *IDInfo) MarshalBinary() ([]byte, error) {
	out := i.appendTBS(make([]byte, 0, IDInfoSize))
	return append(out, i.Signature[:]...), nil
}

// UnmarshalBinary decodes a signed IDInfo.
func (i *IDInfo) UnmarshalBinary(data []byte) error {
	if len(data) != IDInfoSize {
		return fmt.Errorf("registry: id_info length %d, want %d", len(data), IDInfoSize)
	}
	copy(i.ControlEphID[:], data)
	i.ExpTime = binary.BigEndian.Uint32(data[ephid.Size:])
	copy(i.Signature[:], data[idInfoTBS:])
	return nil
}

// BootstrapResult is m2 of Figure 2: everything the host needs to start
// using the network.
type BootstrapResult struct {
	// HID is the host's assigned identifier. (In the paper the host
	// need not learn it explicitly; it is its IPv4 address in the
	// deployment story of Section VII-D.)
	HID ephid.HID
	// IDInfo is the signed control-EphID binding.
	IDInfo IDInfo
	// MSCert and DNSCert let the host reach the AS's services.
	MSCert, DNSCert cert.Cert
	// ASDHPub is the AS public key the host combines with its own
	// private key to derive kHA.
	ASDHPub [crypto.X25519PublicKeySize]byte
}

// Config parameterizes a registry service.
type Config struct {
	AID ephid.AID
	// ControlEphIDLifetime is the control EphID validity in seconds
	// ("e.g., DHCP lease time", Section IV-B).
	ControlEphIDLifetime uint32
	// MaxHosts bounds HID allocation (0 means the full 32-bit space).
	MaxHosts uint32
}

// Service is the Registry Service of one AS.
type Service struct {
	cfg    Config
	auth   Authenticator
	sealer *ephid.Sealer
	signer *crypto.Signer
	dh     *crypto.KeyPair
	db     *hostdb.DB
	now    func() int64

	mu      sync.Mutex
	nextHID uint32
	bySub   map[string]ephid.HID
	msCert  *cert.Cert
	dnsCert *cert.Cert
}

// New creates a registry service. now supplies Unix seconds (the
// simulation's virtual clock).
func New(cfg Config, auth Authenticator, sealer *ephid.Sealer, signer *crypto.Signer,
	dh *crypto.KeyPair, db *hostdb.DB, now func() int64) *Service {
	if cfg.ControlEphIDLifetime == 0 {
		cfg.ControlEphIDLifetime = 24 * 3600
	}
	return &Service{
		cfg: cfg, auth: auth, sealer: sealer, signer: signer, dh: dh, db: db,
		now: now, bySub: make(map[string]ephid.HID),
	}
}

// InstallServiceCerts provides the MS and DNS certificates handed to
// hosts at bootstrap.
func (s *Service) InstallServiceCerts(ms, dns *cert.Cert) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msCert, s.dnsCert = ms, dns
}

// allocHID assigns the next free HID. The caller holds s.mu.
func (s *Service) allocHID() (ephid.HID, error) {
	max := s.cfg.MaxHosts
	if max == 0 {
		max = ^uint32(0)
	}
	if s.nextHID >= max {
		return 0, ErrExhausted
	}
	s.nextHID++
	return ephid.HID(s.nextHID), nil
}

// AllocServiceIdentity registers an AS-internal service (MS, DNS, AA,
// border router) as a pseudo-host: it gets a HID, host<->AS keys
// derived from the service's own DH key, a long-lived control EphID and
// a certificate. aaEphID is embedded in the certificate; pass the zero
// EphID for the accountability agent itself (self-reference).
func (s *Service) AllocServiceIdentity(kind ephid.Kind, lifetime uint32, aaEphID ephid.EphID) (*ServiceIdentity, error) {
	dh, err := crypto.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	sig, err := crypto.GenerateSigner()
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}

	s.mu.Lock()
	hid, err := s.allocHID()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}

	secret, err := s.dh.SharedSecret(dh.PublicKey())
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	keys := crypto.DeriveHostASKeys(secret)
	s.db.Put(hostdb.Entry{
		HID: hid, Keys: keys, HostPub: dh.PublicKey(),
		RegisteredAt: s.now(),
	})

	exp := uint32(s.now()) + lifetime
	id := s.sealer.Mint(ephid.Payload{HID: hid, ExpTime: exp})
	if aaEphID.IsZero() {
		aaEphID = id
	}
	c := cert.Cert{Kind: kind, EphID: id, ExpTime: exp, AID: s.cfg.AID, AAEphID: aaEphID}
	copy(c.DHPub[:], dh.PublicKey())
	copy(c.SigPub[:], sig.PublicKey())
	c.Sign(s.signer)

	return &ServiceIdentity{
		HID: hid, EphID: id, ExpTime: exp, Keys: keys, DH: dh, Sig: sig, Cert: c,
	}, nil
}

// ServiceIdentity is the full identity of an AS-internal service.
type ServiceIdentity struct {
	HID     ephid.HID
	EphID   ephid.EphID
	ExpTime uint32
	Keys    crypto.HostASKeys
	DH      *crypto.KeyPair
	Sig     *crypto.Signer
	Cert    cert.Cert
}

// Bootstrap runs the host-side of Figure 2: authenticate the credential,
// register the host, and return the bootstrap material. hostPub is the
// host's X25519 public key (K+H) learned during authentication.
//
// A subscriber bootstrapping again gets a fresh HID and the old HID is
// revoked with all its EphIDs — the identity-minting defence.
func (s *Service) Bootstrap(credential, hostPub []byte) (*BootstrapResult, error) {
	sub, err := s.auth.Authenticate(credential)
	if err != nil {
		return nil, err
	}
	if len(hostPub) != crypto.X25519PublicKeySize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadHostKey, len(hostPub))
	}
	secret, err := s.dh.SharedSecret(hostPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadHostKey, err)
	}
	keys := crypto.DeriveHostASKeys(secret)

	s.mu.Lock()
	if s.msCert == nil || s.dnsCert == nil {
		s.mu.Unlock()
		return nil, ErrNoService
	}
	msCert, dnsCert := *s.msCert, *s.dnsCert
	if old, ok := s.bySub[sub]; ok {
		s.db.Revoke(old)
	}
	hid, err := s.allocHID()
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.bySub[sub] = hid
	s.mu.Unlock()

	now := s.now()
	s.db.Put(hostdb.Entry{
		HID: hid, Keys: keys, HostPub: hostPub, RegisteredAt: now,
	})

	exp := uint32(now) + s.cfg.ControlEphIDLifetime
	info := IDInfo{
		ControlEphID: s.sealer.Mint(ephid.Payload{HID: hid, ExpTime: exp}),
		ExpTime:      exp,
	}
	copy(info.Signature[:], s.signer.Sign(idInfoLabel, info.appendTBS(nil)))

	res := &BootstrapResult{HID: hid, IDInfo: info, MSCert: msCert, DNSCert: dnsCert}
	copy(res.ASDHPub[:], s.dh.PublicKey())
	return res, nil
}

// HostCount reports how many identities (hosts plus services) have been
// allocated.
func (s *Service) HostCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.nextHID)
}
