package registry

import (
	"bytes"
	"errors"
	"testing"

	"apna/internal/crypto"
	"apna/internal/ephid"
	"apna/internal/hostdb"
)

type fixture struct {
	svc    *Service
	db     *hostdb.DB
	sealer *ephid.Sealer
	signer *crypto.Signer
	asDH   *crypto.KeyPair
	now    int64
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	secret, err := crypto.ASSecretFromBytes(bytes.Repeat([]byte{9}, crypto.SymKeySize))
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := ephid.NewSealer(secret)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := crypto.GenerateSigner()
	if err != nil {
		t.Fatal(err)
	}
	asDH, err := crypto.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{db: hostdb.New(), sealer: sealer, signer: signer, asDH: asDH, now: 1_000_000}
	auth := CredentialTable{"alice-token": "alice", "bob-token": "bob"}
	f.svc = New(Config{AID: 64512, ControlEphIDLifetime: 3600}, auth,
		sealer, signer, asDH, f.db, func() int64 { return f.now })

	// Install service certs (normally built by the facade).
	aaID, err := f.svc.AllocServiceIdentity(ephid.KindControl, 86400, ephid.EphID{})
	if err != nil {
		t.Fatal(err)
	}
	msID, err := f.svc.AllocServiceIdentity(ephid.KindControl, 86400, aaID.EphID)
	if err != nil {
		t.Fatal(err)
	}
	dnsID, err := f.svc.AllocServiceIdentity(ephid.KindControl, 86400, aaID.EphID)
	if err != nil {
		t.Fatal(err)
	}
	f.svc.InstallServiceCerts(&msID.Cert, &dnsID.Cert)
	return f
}

func hostKey(t *testing.T) *crypto.KeyPair {
	t.Helper()
	k, err := crypto.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootstrapHappyPath(t *testing.T) {
	f := newFixture(t)
	hk := hostKey(t)
	res, err := f.svc.Bootstrap([]byte("alice-token"), hk.PublicKey())
	if err != nil {
		t.Fatal(err)
	}

	// The signed IDInfo verifies against the AS key.
	if err := res.IDInfo.Verify(f.signer.PublicKey()); err != nil {
		t.Errorf("IDInfo: %v", err)
	}
	// The control EphID decodes to the host's HID with the right
	// lifetime.
	p, err := f.sealer.Open(res.IDInfo.ControlEphID)
	if err != nil {
		t.Fatal(err)
	}
	if p.HID != res.HID {
		t.Errorf("EphID HID %v != assigned %v", p.HID, res.HID)
	}
	if p.ExpTime != uint32(f.now)+3600 {
		t.Errorf("ExpTime = %d", p.ExpTime)
	}
	// The host can derive the same kHA the AS stored.
	secret, err := hk.SharedSecret(res.ASDHPub[:])
	if err != nil {
		t.Fatal(err)
	}
	hostKeys := crypto.DeriveHostASKeys(secret)
	entry, err := f.db.Get(res.HID)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Keys != hostKeys {
		t.Error("host and AS derived different kHA")
	}
	// Service certs came along.
	if res.MSCert.AID != 64512 || res.DNSCert.AID != 64512 {
		t.Error("service certs missing")
	}
}

func TestBootstrapAuthFailure(t *testing.T) {
	f := newFixture(t)
	hk := hostKey(t)
	if _, err := f.svc.Bootstrap([]byte("wrong"), hk.PublicKey()); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("err = %v", err)
	}
}

func TestBootstrapBadHostKey(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.Bootstrap([]byte("alice-token"), make([]byte, 16)); !errors.Is(err, ErrBadHostKey) {
		t.Errorf("err = %v", err)
	}
}

func TestRebootstrapRevokesOldHID(t *testing.T) {
	// Identity-minting defence (Section VI-A): one live HID per
	// subscriber.
	f := newFixture(t)
	hk := hostKey(t)
	first, err := f.svc.Bootstrap([]byte("alice-token"), hk.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.svc.Bootstrap([]byte("alice-token"), hk.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if first.HID == second.HID {
		t.Error("re-bootstrap reused HID")
	}
	if f.db.Valid(first.HID) {
		t.Error("old HID still valid after re-bootstrap")
	}
	if !f.db.Valid(second.HID) {
		t.Error("new HID invalid")
	}
}

func TestDistinctSubscribersDistinctHIDs(t *testing.T) {
	f := newFixture(t)
	a, err := f.svc.Bootstrap([]byte("alice-token"), hostKey(t).PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.svc.Bootstrap([]byte("bob-token"), hostKey(t).PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if a.HID == b.HID {
		t.Error("two subscribers share a HID")
	}
	if f.svc.HostCount() < 5 { // 3 services + 2 hosts
		t.Errorf("HostCount = %d", f.svc.HostCount())
	}
}

func TestBootstrapWithoutServiceCerts(t *testing.T) {
	secret, _ := crypto.ASSecretFromBytes(bytes.Repeat([]byte{1}, 16))
	sealer, _ := ephid.NewSealer(secret)
	signer, _ := crypto.GenerateSigner()
	asDH, _ := crypto.GenerateKeyPair()
	svc := New(Config{AID: 1}, CredentialTable{"t": "s"}, sealer, signer, asDH,
		hostdb.New(), func() int64 { return 0 })
	if _, err := svc.Bootstrap([]byte("t"), hostKey(t).PublicKey()); !errors.Is(err, ErrNoService) {
		t.Errorf("err = %v", err)
	}
}

func TestHIDExhaustion(t *testing.T) {
	f := newFixture(t)
	f.svc.cfg.MaxHosts = 4 // 3 already taken by services
	if _, err := f.svc.Bootstrap([]byte("alice-token"), hostKey(t).PublicKey()); err != nil {
		t.Fatalf("4th identity: %v", err)
	}
	if _, err := f.svc.Bootstrap([]byte("bob-token"), hostKey(t).PublicKey()); !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v", err)
	}
}

func TestIDInfoTamperRejected(t *testing.T) {
	f := newFixture(t)
	res, err := f.svc.Bootstrap([]byte("alice-token"), hostKey(t).PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	info := res.IDInfo
	info.ExpTime++
	if err := info.Verify(f.signer.PublicKey()); !errors.Is(err, ErrBadIDInfo) {
		t.Errorf("tampered IDInfo: %v", err)
	}
}

func TestIDInfoMarshalRoundTrip(t *testing.T) {
	f := newFixture(t)
	res, _ := f.svc.Bootstrap([]byte("alice-token"), hostKey(t).PublicKey())
	raw, err := res.IDInfo.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != IDInfoSize {
		t.Fatalf("size %d", len(raw))
	}
	var got IDInfo
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	if got != res.IDInfo {
		t.Error("roundtrip mismatch")
	}
	if err := got.Verify(f.signer.PublicKey()); err != nil {
		t.Errorf("roundtripped IDInfo: %v", err)
	}
	if err := got.UnmarshalBinary(raw[:10]); err == nil {
		t.Error("short IDInfo accepted")
	}
}

func TestAllocServiceIdentity(t *testing.T) {
	f := newFixture(t)
	aa, err := f.svc.AllocServiceIdentity(ephid.KindControl, 1000, ephid.EphID{})
	if err != nil {
		t.Fatal(err)
	}
	// Self-referencing AA EphID.
	if aa.Cert.AAEphID != aa.EphID {
		t.Error("AA cert does not self-reference")
	}
	// Cert verifies and is registered in the db.
	if err := aa.Cert.Verify(f.signer.PublicKey(), f.now); err != nil {
		t.Errorf("cert: %v", err)
	}
	if !f.db.Valid(aa.HID) {
		t.Error("service HID not in db")
	}
	// The EphID decodes to the service's HID.
	p, err := f.sealer.Open(aa.EphID)
	if err != nil || p.HID != aa.HID {
		t.Errorf("open: %+v, %v", p, err)
	}

	other, err := f.svc.AllocServiceIdentity(ephid.KindControl, 1000, aa.EphID)
	if err != nil {
		t.Fatal(err)
	}
	if other.Cert.AAEphID != aa.EphID {
		t.Error("service cert AAEphID not set")
	}
}

func TestCredentialTable(t *testing.T) {
	tab := CredentialTable{"tok": "sub"}
	if s, err := tab.Authenticate([]byte("tok")); err != nil || s != "sub" {
		t.Errorf("Authenticate = %q, %v", s, err)
	}
	if _, err := tab.Authenticate([]byte("nope")); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("err = %v", err)
	}
}
