// Package rpki is the AS key infrastructure substrate. The paper assumes
// "participating parties can retrieve and verify the public keys of
// ASes. For example, a scheme such as RPKI can be used" (Section IV-A).
//
// This package provides that scheme: an offline root authority signs
// resource records binding an AID to the AS's two public keys (Ed25519
// for certificate signatures, X25519 for the host-bootstrap DH), and a
// TrustStore verifies and caches the records so any party can resolve an
// AID to authentic keys.
package rpki

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"apna/internal/crypto"
	"apna/internal/ephid"
)

const (
	recordTBS = 4 + crypto.SigningPublicKeySize + crypto.X25519PublicKeySize + 8
	// RecordSize is the wire size of a signed resource record.
	RecordSize = recordTBS + crypto.SignatureSize

	sigLabel = "apna/v1/rpki/record"
)

// Errors returned by the trust store.
var (
	ErrBadRecord   = errors.New("rpki: malformed resource record")
	ErrBadSig      = errors.New("rpki: record signature invalid")
	ErrUnknownAS   = errors.New("rpki: no record for AID")
	ErrRecordStale = errors.New("rpki: record expired")
)

// Record binds an AID to its AS's public keys, signed by the root
// authority.
type Record struct {
	AID ephid.AID
	// SigPub is the AS's Ed25519 key, verifying EphID certificates and
	// DNS records issued by the AS.
	SigPub [crypto.SigningPublicKeySize]byte
	// DHPub is the AS's X25519 key; hosts use it in the bootstrap DH
	// exchange of Figure 2.
	DHPub [crypto.X25519PublicKeySize]byte
	// NotAfter is the record's expiration in Unix seconds.
	NotAfter int64
	// Signature is the root authority's signature.
	Signature [crypto.SignatureSize]byte
}

func (r *Record) appendTBS(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.AID))
	dst = append(dst, r.SigPub[:]...)
	dst = append(dst, r.DHPub[:]...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.NotAfter))
	return dst
}

// MarshalBinary encodes the signed record.
func (r *Record) MarshalBinary() ([]byte, error) {
	out := r.appendTBS(make([]byte, 0, RecordSize))
	return append(out, r.Signature[:]...), nil
}

// UnmarshalBinary decodes a signed record (without verifying it).
func (r *Record) UnmarshalBinary(data []byte) error {
	if len(data) != RecordSize {
		return fmt.Errorf("%w: length %d", ErrBadRecord, len(data))
	}
	r.AID = ephid.AID(binary.BigEndian.Uint32(data))
	off := 4
	copy(r.SigPub[:], data[off:])
	off += crypto.SigningPublicKeySize
	copy(r.DHPub[:], data[off:])
	off += crypto.X25519PublicKeySize
	r.NotAfter = int64(binary.BigEndian.Uint64(data[off:]))
	off += 8
	copy(r.Signature[:], data[off:])
	return nil
}

// Authority is the offline root of trust (standing in for the RIR
// hierarchy of deployed RPKI).
type Authority struct {
	signer *crypto.Signer
}

// NewAuthority creates a root authority with a fresh key.
func NewAuthority() (*Authority, error) {
	s, err := crypto.GenerateSigner()
	if err != nil {
		return nil, fmt.Errorf("rpki: %w", err)
	}
	return &Authority{signer: s}, nil
}

// PublicKey returns the root verification key that trust stores pin.
func (a *Authority) PublicKey() []byte { return a.signer.PublicKey() }

// Certify issues a signed record for an AS.
func (a *Authority) Certify(aid ephid.AID, sigPub, dhPub []byte, notAfter int64) (*Record, error) {
	if len(sigPub) != crypto.SigningPublicKeySize || len(dhPub) != crypto.X25519PublicKeySize {
		return nil, fmt.Errorf("rpki: bad key sizes (%d, %d)", len(sigPub), len(dhPub))
	}
	r := &Record{AID: aid, NotAfter: notAfter}
	copy(r.SigPub[:], sigPub)
	copy(r.DHPub[:], dhPub)
	copy(r.Signature[:], a.signer.Sign(sigLabel, r.appendTBS(nil)))
	return r, nil
}

// TrustStore verifies and caches resource records against a pinned root
// key. It is safe for concurrent use: every entity in the simulation
// (hosts, border routers, accountability agents) shares one store.
type TrustStore struct {
	rootPub []byte

	mu      sync.RWMutex
	records map[ephid.AID]*Record
}

// NewTrustStore builds a store pinning the given root public key.
func NewTrustStore(rootPub []byte) *TrustStore {
	return &TrustStore{
		rootPub: append([]byte(nil), rootPub...),
		records: make(map[ephid.AID]*Record),
	}
}

// Add verifies a record against the root key and caches it. A record
// failing verification is rejected and not cached.
func (t *TrustStore) Add(r *Record) error {
	if !crypto.Verify(t.rootPub, sigLabel, r.appendTBS(nil), r.Signature[:]) {
		return ErrBadSig
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.records[r.AID] = r
	return nil
}

// Lookup resolves an AID to its verified record, checking freshness at
// nowUnix.
func (t *TrustStore) Lookup(aid ephid.AID, nowUnix int64) (*Record, error) {
	t.mu.RLock()
	r, ok := t.records[aid]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownAS, aid)
	}
	if r.NotAfter < nowUnix {
		return nil, fmt.Errorf("%w: %v", ErrRecordStale, aid)
	}
	return r, nil
}

// SigKey resolves an AID to the AS's certificate-verification key.
func (t *TrustStore) SigKey(aid ephid.AID, nowUnix int64) ([]byte, error) {
	r, err := t.Lookup(aid, nowUnix)
	if err != nil {
		return nil, err
	}
	return r.SigPub[:], nil
}

// DHKey resolves an AID to the AS's X25519 bootstrap key.
func (t *TrustStore) DHKey(aid ephid.AID, nowUnix int64) ([]byte, error) {
	r, err := t.Lookup(aid, nowUnix)
	if err != nil {
		return nil, err
	}
	return r.DHPub[:], nil
}

// Len reports how many AS records the store holds.
func (t *TrustStore) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.records)
}
