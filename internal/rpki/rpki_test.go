package rpki

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"apna/internal/crypto"
	"apna/internal/ephid"
)

func testAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testKeys(t *testing.T) ([]byte, []byte) {
	t.Helper()
	s, err := crypto.GenerateSigner()
	if err != nil {
		t.Fatal(err)
	}
	kp, err := crypto.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	return s.PublicKey(), kp.PublicKey()
}

func TestCertifyAndLookup(t *testing.T) {
	auth := testAuthority(t)
	sigPub, dhPub := testKeys(t)
	rec, err := auth.Certify(64512, sigPub, dhPub, 1000)
	if err != nil {
		t.Fatal(err)
	}

	store := NewTrustStore(auth.PublicKey())
	if err := store.Add(rec); err != nil {
		t.Fatal(err)
	}
	got, err := store.Lookup(64512, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.SigPub[:], sigPub) || !bytes.Equal(got.DHPub[:], dhPub) {
		t.Error("lookup returned wrong keys")
	}
	if k, err := store.SigKey(64512, 500); err != nil || !bytes.Equal(k, sigPub) {
		t.Errorf("SigKey: %x, %v", k, err)
	}
	if k, err := store.DHKey(64512, 500); err != nil || !bytes.Equal(k, dhPub) {
		t.Errorf("DHKey: %x, %v", k, err)
	}
	if store.Len() != 1 {
		t.Errorf("Len = %d", store.Len())
	}
}

func TestTrustStoreRejectsForgedRecord(t *testing.T) {
	auth := testAuthority(t)
	rogue := testAuthority(t)
	sigPub, dhPub := testKeys(t)
	rec, err := rogue.Certify(64512, sigPub, dhPub, 1000)
	if err != nil {
		t.Fatal(err)
	}
	store := NewTrustStore(auth.PublicKey())
	if err := store.Add(rec); !errors.Is(err, ErrBadSig) {
		t.Errorf("Add forged record: %v", err)
	}
	if _, err := store.Lookup(64512, 0); !errors.Is(err, ErrUnknownAS) {
		t.Errorf("forged record cached: %v", err)
	}
}

func TestTrustStoreRejectsTamperedRecord(t *testing.T) {
	auth := testAuthority(t)
	sigPub, dhPub := testKeys(t)
	rec, _ := auth.Certify(1, sigPub, dhPub, 1000)
	rec.AID = 2 // re-point the record at another AS
	store := NewTrustStore(auth.PublicKey())
	if err := store.Add(rec); !errors.Is(err, ErrBadSig) {
		t.Errorf("tampered record accepted: %v", err)
	}
}

func TestLookupStaleRecord(t *testing.T) {
	auth := testAuthority(t)
	sigPub, dhPub := testKeys(t)
	rec, _ := auth.Certify(7, sigPub, dhPub, 100)
	store := NewTrustStore(auth.PublicKey())
	if err := store.Add(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Lookup(7, 101); !errors.Is(err, ErrRecordStale) {
		t.Errorf("stale lookup: %v", err)
	}
	if _, err := store.Lookup(7, 100); err != nil {
		t.Errorf("boundary lookup: %v", err)
	}
	if _, err := store.SigKey(99, 0); !errors.Is(err, ErrUnknownAS) {
		t.Errorf("unknown SigKey: %v", err)
	}
	if _, err := store.DHKey(99, 0); !errors.Is(err, ErrUnknownAS) {
		t.Errorf("unknown DHKey: %v", err)
	}
}

func TestCertifyRejectsBadKeySizes(t *testing.T) {
	auth := testAuthority(t)
	sigPub, dhPub := testKeys(t)
	if _, err := auth.Certify(1, sigPub[:31], dhPub, 0); err == nil {
		t.Error("short sig key accepted")
	}
	if _, err := auth.Certify(1, sigPub, dhPub[:31], 0); err == nil {
		t.Error("short dh key accepted")
	}
}

func TestRecordMarshalRoundTrip(t *testing.T) {
	f := func(aid uint32, sig [32]byte, dh [32]byte, notAfter int64, s [64]byte) bool {
		r := Record{AID: ephid.AID(aid), SigPub: sig, DHPub: dh, NotAfter: notAfter, Signature: s}
		raw, _ := r.MarshalBinary()
		if len(raw) != RecordSize {
			return false
		}
		var got Record
		if err := got.UnmarshalBinary(raw); err != nil {
			return false
		}
		return got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	var r Record
	if err := r.UnmarshalBinary(make([]byte, RecordSize-1)); !errors.Is(err, ErrBadRecord) {
		t.Errorf("short record: %v", err)
	}
}

func TestMarshalledRecordStillVerifies(t *testing.T) {
	auth := testAuthority(t)
	sigPub, dhPub := testKeys(t)
	rec, _ := auth.Certify(42, sigPub, dhPub, 1000)
	raw, _ := rec.MarshalBinary()
	var got Record
	if err := got.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	store := NewTrustStore(auth.PublicKey())
	if err := store.Add(&got); err != nil {
		t.Errorf("roundtripped record rejected: %v", err)
	}
}
