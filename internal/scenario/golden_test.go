package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioCorpusGolden runs every committed scenario spec, compares
// its verdict byte for byte against the golden under
// scenarios/testdata/, then replays the committed fault schedule and
// requires the replayed verdict to be byte-identical too — the DSL's
// regression gate. Regenerate with:
//
//	SCENARIO_REGEN=1 go test ./internal/scenario -run TestScenarioCorpusGolden
func TestScenarioCorpusGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario specs found: %v", err)
	}
	regen := os.Getenv("SCENARIO_REGEN") != ""
	for _, f := range files {
		f := f
		name := strings.TrimSuffix(filepath.Base(f), ".json")
		t.Run(name, func(t *testing.T) {
			s, err := Load(f)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res, err := Run(s, RunOptions{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got, err := res.Verdict.JSON()
			if err != nil {
				t.Fatalf("verdict json: %v", err)
			}
			if !res.Verdict.OK {
				t.Errorf("verdict not OK: %v", res.Verdict.Failures)
			}

			goldenPath := filepath.Join("..", "..", "scenarios", "testdata", name+".verdict.json")
			schedPath := filepath.Join("..", "..", "scenarios", "testdata", name+".schedule.json")
			if regen {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				if err := res.Schedule.Save(schedPath); err != nil {
					t.Fatalf("write schedule: %v", err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (regenerate with SCENARIO_REGEN=1): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("verdict drifted from golden %s:\n got: %s\nwant: %s", goldenPath, got, want)
			}

			// Replay the committed schedule: the run must consume it
			// exactly and reproduce the verdict byte for byte.
			sc, err := LoadSchedule(schedPath)
			if err != nil {
				t.Fatalf("missing schedule (regenerate with SCENARIO_REGEN=1): %v", err)
			}
			res2, err := Run(s, RunOptions{Replay: sc})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			st := res2.Replay
			if st == nil || st.Mismatched != 0 || st.Underrun != 0 || st.Leftover != 0 || st.Desynced {
				t.Errorf("replay misaligned: %+v", st)
			}
			got2, err := res2.Verdict.JSON()
			if err != nil {
				t.Fatalf("replay verdict json: %v", err)
			}
			if !bytes.Equal(got2, want) {
				t.Errorf("replayed verdict differs from golden:\n got: %s\nwant: %s", got2, want)
			}
		})
	}
}

// TestScheduleRoundTrip proves a saved schedule file reloads into the
// same events and refuses foreign specs and seeds.
func TestScheduleRoundTrip(t *testing.T) {
	s := loadSpec(t, "e7.json")
	res := runSpec(t, s, RunOptions{})
	if len(res.Schedule.Events) == 0 {
		t.Fatalf("chaotic run captured no fault events")
	}
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := res.Schedule.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	sc, err := LoadSchedule(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(sc.Events) != len(res.Schedule.Events) {
		t.Fatalf("events: %d, want %d", len(sc.Events), len(res.Schedule.Events))
	}

	// Wrong seed must be rejected before anything runs.
	s2 := *s
	s2.Seed = s.Seed + 1
	if _, err := Run(&s2, RunOptions{Replay: sc}); err == nil {
		t.Errorf("replay with wrong seed accepted")
	}
	// Wrong spec (hash mismatch) must be rejected too.
	other := loadSpec(t, "e6.json")
	if _, err := Run(other, RunOptions{Replay: sc}); err == nil {
		t.Errorf("replay against a different spec accepted")
	}
}
