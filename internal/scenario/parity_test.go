package scenario

import (
	"maps"
	"path/filepath"
	"testing"

	"apna/internal/experiments"
)

func loadSpec(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := Load(filepath.Join("..", "..", "scenarios", name))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return s
}

func runSpec(t *testing.T, s *Spec, opts RunOptions) *Result {
	t.Helper()
	res, err := Run(s, opts)
	if err != nil {
		t.Fatalf("run %s: %v", s.Name, err)
	}
	return res
}

// TestE6Parity proves the committed e6.json spec compiles to the exact
// run the hand-coded E6 scenario produces: same counters, same event
// count, same virtual time.
func TestE6Parity(t *testing.T) {
	s := loadSpec(t, "e6.json")
	res := runSpec(t, s, RunOptions{})
	v := res.Verdict

	e6, err := experiments.RunE6(experiments.DefaultScenario())
	if err != nil {
		t.Fatalf("RunE6: %v", err)
	}

	if v.Hosts != e6.Hosts {
		t.Errorf("hosts: spec %d, hand-coded %d", v.Hosts, e6.Hosts)
	}
	if v.Flows != e6.Connections {
		t.Errorf("flows: spec %d, hand-coded %d", v.Flows, e6.Connections)
	}
	if v.FlowsFailed != 0 {
		t.Errorf("flows failed: %d, want 0 on chaos-free mesh", v.FlowsFailed)
	}
	if v.MessagesSent != e6.MessagesSent {
		t.Errorf("sent: spec %d, hand-coded %d", v.MessagesSent, e6.MessagesSent)
	}
	if v.Delivered != e6.MessagesDelivered {
		t.Errorf("delivered: spec %d, hand-coded %d", v.Delivered, e6.MessagesDelivered)
	}
	if v.ShutoffsFiled != e6.ShutoffsFiled || v.ShutoffsAccepted != e6.ShutoffsAccepted {
		t.Errorf("shutoffs: spec %d/%d, hand-coded %d/%d",
			v.ShutoffsAccepted, v.ShutoffsFiled, e6.ShutoffsAccepted, e6.ShutoffsFiled)
	}
	if v.Events != e6.Events {
		t.Errorf("events: spec %d, hand-coded %d", v.Events, e6.Events)
	}
	if v.VirtualNs != int64(e6.VirtualElapsed) {
		t.Errorf("virtual time: spec %dns, hand-coded %dns", v.VirtualNs, int64(e6.VirtualElapsed))
	}
	if !v.OK {
		t.Errorf("verdict not OK: %v", v.Failures)
	}
}

// TestE7Parity proves the committed e7.json spec reproduces the
// hand-coded adversarial conformance run on every sweep seed: same
// verdict, flows, deliveries, revocations, attack and defense counters,
// and the same simulator event count (the strongest equivalence the
// verdicts expose — equal event counts on a seeded simulation mean the
// two drivers scheduled the same work).
func TestE7Parity(t *testing.T) {
	base := loadSpec(t, "e7.json")
	cfg := experiments.DefaultAdversarial()
	e7, err := experiments.RunE7(cfg)
	if err != nil {
		t.Fatalf("RunE7: %v", err)
	}

	for _, hand := range e7.Verdicts {
		s := *base
		s.Seed = hand.Seed
		res := runSpec(t, &s, RunOptions{})
		v := res.Verdict

		if v.OK != hand.OK {
			t.Errorf("seed %d: ok: spec %v, hand-coded %v (failures %v)", hand.Seed, v.OK, hand.OK, v.Failures)
		}
		if v.Flows != hand.Flows || v.FlowsFailed != hand.FlowsFailed {
			t.Errorf("seed %d: flows: spec %d/%d, hand-coded %d/%d",
				hand.Seed, v.Flows, v.FlowsFailed, hand.Flows, hand.FlowsFailed)
		}
		if v.Delivered != hand.Delivered {
			t.Errorf("seed %d: delivered: spec %d, hand-coded %d", hand.Seed, v.Delivered, hand.Delivered)
		}
		if v.Revoked != hand.Revoked {
			t.Errorf("seed %d: revoked: spec %d, hand-coded %d", hand.Seed, v.Revoked, hand.Revoked)
		}
		if !maps.Equal(v.Attacks, hand.Attacks) {
			t.Errorf("seed %d: attacks: spec %v, hand-coded %v", hand.Seed, v.Attacks, hand.Attacks)
		}
		if !maps.Equal(v.Defenses, hand.Defenses) {
			t.Errorf("seed %d: defenses: spec %v, hand-coded %v", hand.Seed, v.Defenses, hand.Defenses)
		}
		if v.Events != hand.Events {
			t.Errorf("seed %d: events: spec %d, hand-coded %d", hand.Seed, v.Events, hand.Events)
		}
		if v.Invariants == nil || v.Invariants.OK != hand.Report.OK {
			t.Errorf("seed %d: invariant report mismatch", hand.Seed)
		}
	}
}
