package scenario

import (
	"errors"
	"fmt"
	"time"

	"apna"
	"apna/internal/adversary"
	"apna/internal/border"
	"apna/internal/dns"
	"apna/internal/ephid"
	"apna/internal/invariant"
	"apna/internal/netsim"
	"apna/internal/population"
)

// RunOptions selects capture or replay. The zero value captures the
// run's fault schedule (the default: every run is replayable).
type RunOptions struct {
	// Replay, when set, replays the recorded fault schedule instead of
	// capturing a fresh one. The schedule must match the spec (hash)
	// and seed.
	Replay *Schedule
}

// Result is a completed run: the deterministic verdict, the captured
// schedule (capture mode) and the alignment stats (replay mode).
type Result struct {
	Verdict  *Verdict
	Schedule *Schedule
	Replay   *netsim.ReplayStats
}

// hostState mirrors the hand-coded scenarios' per-host record: issued
// EphIDs in order, plus the latest delivered message per sending
// endpoint — the evidence a mid-flight shutoff presents.
type hostState struct {
	ids  []*apna.OwnedEphID
	last map[apna.Endpoint]apna.Message
}

// runFlow is one established (or attempted) flow.
type runFlow struct {
	src, dst    int
	srcEp       apna.Endpoint
	conn        *apna.Conn
	established bool
	revoked     bool
}

// pendingResolve is a resolve action awaiting its phase's quiescence.
type pendingResolve struct {
	act *ActionSpec
	p   *apna.Pending[*apna.Cert]
}

// pendingShutoff is a shutoff action awaiting ground-truth checks.
type pendingShutoff struct {
	act     *ActionSpec
	targets []int
	filed   []*apna.Pending[bool]
}

// runner executes one compiled spec.
type runner struct {
	spec     *Spec
	in       *apna.Internet
	firstAID apna.AID
	nASes    int

	hosts  []*apna.Host
	byAS   [][]int
	states []hostState
	flows  []runFlow

	attackers  []*apna.Attacker
	attackerAS map[int]bool // AS indices hosting an attacker

	check   *invariant.Checker
	verdict *Verdict

	sendWave   int
	attackWave int

	compromised    []*adversary.Compromised
	compromisedDst []apna.Endpoint
}

// Run compiles the spec into facade primitives, executes its phases on
// the simulator, referees the selected invariants and evaluates the
// bounds. Validate is NOT implied: callers going through Parse/Load are
// covered; hand-built specs should call Validate first.
func Run(s *Spec, opts RunOptions) (*Result, error) {
	specHash, err := s.SpecHash()
	if err != nil {
		return nil, err
	}
	if rp := opts.Replay; rp != nil {
		if rp.SpecHash != "" && rp.SpecHash != specHash {
			return nil, fmt.Errorf("scenario: schedule belongs to spec %.12s…, not %.12s…", rp.SpecHash, specHash)
		}
		if rp.Seed != s.Seed {
			return nil, fmt.Errorf("scenario: schedule recorded with seed %d, spec has %d", rp.Seed, s.Seed)
		}
	}

	in, err := apna.New(s.Seed, s.topoOptions()...)
	if err != nil {
		return nil, err
	}
	var capture *netsim.FaultTrace
	if opts.Replay != nil {
		in.Sim.ReplayFaults(opts.Replay.Events)
	} else {
		capture = in.Sim.CaptureFaults()
	}
	virtualStart := in.Sim.Now()

	r := &runner{
		spec: s, in: in, verdict: &Verdict{Name: s.Name, Seed: s.Seed, SpecHash: specHash},
		attackerAS: make(map[int]bool),
	}
	r.firstAID = apna.AID(s.Topology.FirstAID)
	if r.firstAID == 0 {
		r.firstAID = 100
	}
	r.nASes = len(s.Topology.aids())
	r.hosts = in.Hosts()
	r.verdict.Hosts = len(r.hosts)

	if len(s.Invariants) > 0 {
		// Grace covers the longest chaotic delivery path, as in E7.
		maxLink := s.Topology.LinkLatency.D()
		if s.Topology.CoreLatency.D() > maxLink {
			maxLink = s.Topology.CoreLatency.D()
		}
		if c := s.Chaos; c != nil {
			maxLink += c.Jitter.D() + c.ReorderDelay.D()
		}
		r.check = invariant.New(in.Sim.Now, 3*maxLink+10*time.Millisecond)
	}

	// Host wiring: delivery counting, evidence retention, referee taps.
	r.byAS = make([][]int, r.nASes)
	r.states = make([]hostState, len(r.hosts))
	for i, h := range r.hosts {
		i, h := i, h
		r.byAS[r.asIdx(i)] = append(r.byAS[r.asIdx(i)], i)
		r.states[i].last = make(map[apna.Endpoint]apna.Message)
		h.Stack.OnMessage(func(m apna.Message) {
			r.verdict.Delivered++
			r.states[i].last[m.Flow.Src] = m
			if r.check != nil {
				r.check.Delivered(h.Name, m)
			}
		})
		if r.check != nil {
			h.Stack.OnAccept(func(_ apna.EphID, peer apna.Endpoint, addressed apna.EphID) {
				r.check.Accepted(peer, apna.Endpoint{AID: h.AS().AID, EphID: addressed})
			})
		}
	}
	for _, a := range s.Attackers {
		att := in.Attacker(a.Name)
		r.attackers = append(r.attackers, att)
		r.attackerAS[int(apna.AID(a.AS)-r.firstAID)] = true
		if len(a.Tap) == 2 {
			if err := att.TapInterAS(apna.AID(a.Tap[0]), apna.AID(a.Tap[1])); err != nil {
				return nil, err
			}
		}
	}

	for pi := range s.Phases {
		if err := r.phase(&s.Phases[pi]); err != nil {
			return nil, fmt.Errorf("scenario: phase %d (%s): %w", pi, s.Phases[pi].Name, err)
		}
	}
	in.RunUntilIdle()
	r.finish()

	r.verdict.Events = in.Sim.Events()
	r.verdict.VirtualNs = int64(in.Sim.Now() - virtualStart)

	res := &Result{Verdict: r.verdict}
	var events []netsim.FaultEvent
	if capture != nil {
		events = capture.Events
		res.Schedule = &Schedule{Version: ScheduleVersion, Seed: s.Seed, SpecHash: specHash, Events: events}
		r.verdict.Faults = len(events)
	} else {
		st := in.Sim.FaultReplayStats()
		res.Replay = &st
		events = opts.Replay.Events
		r.verdict.Faults = st.Consumed + st.Underrun
	}
	if err := r.verdict.computeTraceHash(events); err != nil {
		return nil, err
	}
	return res, nil
}

// asIdx maps a host index to its AS's index in the topology.
func (r *runner) asIdx(hostIdx int) int {
	return int(r.hosts[hostIdx].AS().AID - r.firstAID)
}

// phase executes one phase: actions in order collecting async ops, one
// await, then the post-quiescence steps (shutoff ground truth, resolve
// expectations).
func (r *runner) phase(ph *PhaseSpec) error {
	var ops []apna.Op
	var resolves []pendingResolve
	var shutoffs []pendingShutoff
	for ai := range ph.Actions {
		a := &ph.Actions[ai]
		var err error
		switch a.Op {
		case OpIssue:
			err = r.issue(a, &ops)
		case OpDial:
			err = r.dial(a, &ops)
		case OpSend:
			r.send(&ops)
		case OpShutoff:
			sh := r.shutoff(a, &ops)
			shutoffs = append(shutoffs, sh)
		case OpAttack:
			err = r.attack(a)
		case OpPartition:
			now := r.in.Sim.Now()
			r.in.InterASLink(apna.AID(a.A), apna.AID(a.B)).Partition(now, now+a.Duration.D())
		case OpPublish:
			err = r.publish(a)
		case OpResolve:
			p := r.in.Host(a.From).LookupAsync(a.As)
			resolves = append(resolves, pendingResolve{act: a, p: p})
			ops = append(ops, p)
		case OpFlashcrowd:
			err = r.flashcrowd(a)
		case OpRun:
			r.in.RunFor(a.Duration.D())
		}
		if err != nil {
			return err
		}
	}
	if len(ops) > 0 {
		if err := r.in.AwaitAll(ops...); err != nil && !errors.Is(err, apna.ErrTimeout) {
			return err
		}
	}
	for i := range shutoffs {
		r.shutoffGroundTruth(&shutoffs[i])
	}
	for i := range resolves {
		r.resolveOutcome(&resolves[i])
	}
	return nil
}

// issue requests a.PerHost fresh EphIDs on every host, all overlapping
// — the E6/E7 issuance wave.
func (r *runner) issue(a *ActionSpec, ops *[]apna.Op) error {
	pend := make([][]*apna.Pending[*apna.OwnedEphID], len(r.hosts))
	var all []apna.Op
	for i, h := range r.hosts {
		for f := 0; f < a.PerHost; f++ {
			p := h.NewEphIDAsync(apna.KindData, a.LifetimeS)
			pend[i] = append(pend[i], p)
			all = append(all, p)
		}
	}
	// Issuance completes within its own await so later actions in the
	// same phase (dials, sends) can use the identifiers.
	if err := r.in.AwaitAll(all...); err != nil {
		return fmt.Errorf("issuance wave: %w", err)
	}
	for i, h := range r.hosts {
		for _, p := range pend[i] {
			id, err := p.Result()
			if err != nil {
				return fmt.Errorf("issuance: %w", err)
			}
			r.states[i].ids = append(r.states[i].ids, id)
			if r.check != nil {
				r.check.Issued(h.AS().AID, id.Cert.EphID)
			}
		}
	}
	_ = ops
	return nil
}

// dial establishes FlowsPerHost flows per host, spread across the
// population with the E6/E7 round-robin so flows cross AS boundaries.
// Each host dials from its f-th EphID toward the peer's last issued
// EphID (the serving identifier).
func (r *runner) dial(a *ActionSpec, ops *[]apna.Op) error {
	hostsPerAS := r.spec.Topology.HostsPerAS
	var dials []*apna.Pending[*apna.Conn]
	firstFlow := len(r.flows)
	for i, h := range r.hosts {
		serving := len(r.states[i].ids) - 1
		for f := 0; f < a.FlowsPerHost; f++ {
			peer := (i + 1 + f*hostsPerAS) % len(r.hosts)
			if peer == i {
				peer = (i + 1) % len(r.hosts)
			}
			dialed := &r.states[peer].ids[serving].Cert
			p := h.ConnectAsync(r.states[i].ids[f], dialed, nil)
			dials = append(dials, p)
			r.flows = append(r.flows, runFlow{src: i, dst: peer, srcEp: r.states[i].ids[f].Endpoint()})
			if r.check != nil {
				r.check.Dialed(r.states[i].ids[f].Endpoint(),
					apna.Endpoint{AID: dialed.AID, EphID: dialed.EphID})
			}
		}
	}
	// The dial wave crosses chaotic links: lost handshakes surface as
	// ErrTimeout and the affected flows are set aside, as in E7.
	if err := r.in.AwaitAll(apna.Ops(dials...)...); err != nil && !errors.Is(err, apna.ErrTimeout) {
		return fmt.Errorf("handshake wave: %w", err)
	}
	for i := range dials {
		fl := &r.flows[firstFlow+i]
		if conn, err := dials[i].Result(); err == nil {
			fl.conn, fl.established = conn, true
			r.verdict.Flows++
		} else {
			r.verdict.FlowsFailed++
		}
	}
	_ = ops
	return nil
}

// send queues one data wave on every established flow.
func (r *runner) send(ops *[]apna.Op) {
	wave := r.sendWave
	r.sendWave++
	for fi := range r.flows {
		fl := &r.flows[fi]
		if !fl.established {
			continue
		}
		msg := fmt.Sprintf("flow %d wave %d", fi, wave)
		*ops = append(*ops, r.hosts[fl.src].SendAsync(fl.conn, []byte(msg)))
		r.verdict.MessagesSent++
	}
}

// shutoff files a.Count mid-flight revocations: each victim presents
// the evidence frame its stack retained for the offending flow. Target
// selection prefers flows sourced inside attacker ASes when requested
// (so post-shutoff compromise attacks have identities to steal).
func (r *runner) shutoff(a *ActionSpec, ops *[]apna.Op) pendingShutoff {
	var targets []int
	if a.PreferAttackerAS {
		for fi := range r.flows {
			if len(targets) < a.Count && r.flows[fi].established && r.attackerAS[r.asIdx(r.flows[fi].src)] {
				targets = append(targets, fi)
			}
		}
	}
	for fi := range r.flows {
		if len(targets) >= a.Count {
			break
		}
		if r.flows[fi].established && !contains(targets, fi) {
			targets = append(targets, fi)
		}
	}
	sh := pendingShutoff{act: a, targets: targets}
	for _, fi := range targets {
		fl := r.flows[fi]
		m, ok := r.states[fl.dst].last[fl.srcEp]
		if !ok {
			continue // evidence lost to chaos
		}
		p := r.hosts[fl.dst].ShutoffAsync(m)
		sh.filed = append(sh.filed, p)
		*ops = append(*ops, p)
	}
	r.verdict.ShutoffsFiled += len(sh.filed)
	return sh
}

// shutoffGroundTruth runs after the phase quiesces: acknowledgment
// counting, and — when requested — ground truth against the source
// border router's revocation list plus identity theft by a co-located
// attacker (the E7 post-shutoff sequence).
func (r *runner) shutoffGroundTruth(sh *pendingShutoff) {
	for _, p := range sh.filed {
		if ok, err := p.Result(); err == nil && ok {
			r.verdict.ShutoffsAccepted++
		}
	}
	if !sh.act.RecordRevoked && !sh.act.Steal {
		return
	}
	for _, fi := range sh.targets {
		fl := &r.flows[fi]
		srcAS := r.in.AS(fl.srcEp.AID)
		if fl.revoked || !srcAS.Router.Revoked().Contains(fl.srcEp.EphID) {
			continue
		}
		fl.revoked = true
		r.verdict.Revoked++
		if r.check != nil {
			r.check.Revoked(fl.srcEp.EphID)
		}
		if !sh.act.Steal {
			continue
		}
		for _, att := range r.attackers {
			if att.AS().AID != fl.srcEp.AID {
				continue
			}
			macKey := r.hosts[fl.src].Stack.Config().Keys.MAC
			comp, err := att.Compromise(macKey[:], fl.srcEp)
			if err != nil {
				continue
			}
			serving := len(r.states[fl.dst].ids) - 1
			r.compromisedDst = append(r.compromisedDst, r.states[fl.dst].ids[serving].Endpoint())
			r.compromised = append(r.compromised, comp)
			break
		}
	}
}

// attack makes every attacker probe the selected surfaces, replicating
// the E7 attack block: per-surface injections toward a rotating victim,
// optional on-path replay of captured traffic, and post-shutoff
// transmissions from every stolen identity.
func (r *runner) attack(a *ActionSpec) error {
	wave := r.attackWave
	r.attackWave++
	hostsPerAS := r.spec.Topology.HostsPerAS
	for k, att := range r.attackers {
		dstHost := (k*7 + wave) % len(r.hosts)
		serving := len(r.states[dstHost].ids) - 1
		dst := r.states[dstHost].ids[serving].Endpoint()
		aid := att.AS().AID
		otherAID := r.firstAID + apna.AID((int(aid-r.firstAID)+1)%r.nASes)

		for _, sf := range a.Surfaces {
			var err error
			switch sf {
			case SurfaceForged:
				err = att.InjectForged(aid, dst)
			case SurfaceForeign:
				// A genuine EphID of another AS, claimed as this AS's own.
				foreign := r.byAS[int(otherAID-r.firstAID)][dstHost%hostsPerAS]
				err = att.InjectForeign(aid, r.states[foreign].ids[0].Cert.EphID, dst)
			case SurfaceSpoofed:
				err = att.InjectSpoofed(otherAID, dst, false)
			case SurfaceFramed:
				// Frame an honest neighbor in the attacker's own AS.
				victim := r.byAS[int(aid-r.firstAID)][wave%hostsPerAS]
				err = att.InjectFramed(r.states[victim].ids[0].Endpoint(), dst)
			case SurfaceExpired:
				// An expired identifier in the AS's genuine format.
				expired := r.in.AS(aid).Sealer().Mint(ephid.Payload{
					HID: 1, ExpTime: uint32(r.in.Now() - 10)})
				err = att.InjectExpired(apna.Endpoint{AID: aid, EphID: expired}, dst)
			}
			if err != nil {
				return err
			}
		}
		if a.Replay {
			// On-path replay of everything captured so far, injected at
			// the attacker AS's external interface.
			if _, err := att.ReplayCaptured(apna.AttackReplay, true); err != nil {
				return err
			}
		}
		for ci, comp := range r.compromised {
			if err := att.InjectCompromised(apna.AttackPostShutoff, comp,
				r.compromisedDst[ci], []byte("still here")); err != nil {
				return err
			}
		}
	}
	return nil
}

// publish stands a service up on a host: a receive-only EphID
// registered in the host's AS zone plus a serving data EphID incoming
// connections migrate to (Section VII-A).
func (r *runner) publish(a *ActionSpec) error {
	h := r.in.Host(a.Host)
	life := a.LifetimeS
	if life == 0 {
		life = 24 * 3600
	}
	svc, err := h.NewEphID(apna.KindReceiveOnly, life)
	if err != nil {
		return err
	}
	serving, err := h.NewEphID(apna.KindData, life)
	if err != nil {
		return err
	}
	for i, hh := range r.hosts {
		if hh == h {
			r.states[i].ids = append(r.states[i].ids, serving)
		}
	}
	return h.PublishLocal(a.As, &svc.Cert)
}

// resolveOutcome checks one resolve action's result against its
// expectation once the phase has quiesced, optionally dialing the
// resolved certificate end to end.
func (r *runner) resolveOutcome(pr *pendingResolve) {
	a := pr.act
	crt, err := pr.p.Result()
	switch a.Expect {
	case "ok":
		if err != nil {
			r.verdict.Failures = append(r.verdict.Failures,
				fmt.Sprintf("resolve %s from %s: %v", a.As, a.From, err))
			return
		}
		r.verdict.Resolved++
		if a.Dial {
			h := r.in.Host(a.From)
			id, err := h.NewEphID(apna.KindData, 900)
			if err == nil {
				_, err = h.Connect(id, crt, nil)
			}
			if err != nil {
				r.verdict.Failures = append(r.verdict.Failures,
					fmt.Sprintf("dial resolved %s from %s: %v", a.As, a.From, err))
				return
			}
			r.verdict.ResolvedDials++
		}
	case "nxdomain":
		if !errors.Is(err, dns.ErrNXDomain) {
			r.verdict.Failures = append(r.verdict.Failures,
				fmt.Sprintf("resolve %s from %s: want NXDOMAIN, got (%v, %v)", a.As, a.From, crt, err))
			return
		}
		r.verdict.Denied++
	}
}

// flashcrowd pushes the modeled population through the control-plane
// engines with the spec's arrival spike and folds the deterministic
// counters into the verdict.
func (r *runner) flashcrowd(a *ActionSpec) error {
	p := a.Population
	cfg := population.DefaultConfig()
	cfg.Hosts, cfg.Ticks, cfg.Workers = p.Hosts, p.Ticks, p.Workers
	cfg.Seed = r.spec.Seed
	cfg.FlashMult, cfg.FlashTick, cfg.FlashTicks = p.FlashMult, p.FlashTick, p.FlashTicks
	cfg.RecordTrace = true
	res, err := population.Run(cfg)
	if err != nil {
		return err
	}
	r.verdict.PopArrivals += res.Arrivals
	r.verdict.FlashArrivals += res.FlashArrivals
	r.verdict.PopTraceHash = res.TraceHash
	return nil
}

// finish referees the invariants, folds in attacker and defense
// statistics, and evaluates the bounds.
func (r *runner) finish() {
	v := r.verdict
	if len(r.attackers) > 0 {
		v.Attacks = make(map[string]uint64)
		v.Defenses = make(map[string]uint64)
		for _, att := range r.attackers {
			if r.check != nil {
				for _, inj := range att.Injections() {
					if inj.Kind.Fabricated() {
						r.check.ForgedInjected(inj.SrcEphID)
					}
				}
			}
			st := att.Stats()
			for _, k := range adversary.AllKinds {
				v.Attacks[k.String()] += st.Injected[k]
			}
		}
		for _, as := range r.in.ASes() {
			st := as.Router.Stats()
			for _, dv := range border.DropVerdicts() {
				if n := st.Get(dv); n > 0 {
					v.Defenses[dv.String()] += n
				}
			}
		}
		for _, h := range r.hosts {
			st := h.Stack.Stats()
			v.Defenses["host-drop-replay"] += st.DropReplay
			v.Defenses["host-drop-decrypt"] += st.DropDecrypt
			v.Defenses["host-drop-no-session"] += st.DropNoSession
			v.Defenses["host-drop-bad-handshake"] += st.DropBadHandshake
		}
	}

	ok := true
	if r.check != nil {
		rep, err := r.check.CheckSelected(r.spec.Invariants)
		if err != nil {
			// Unreachable: Validate vetted every name against the registry.
			panic(err)
		}
		v.Invariants = rep
		ok = ok && rep.OK
	}
	if b := r.spec.Bounds; b != nil {
		fail := func(format string, args ...any) {
			v.Failures = append(v.Failures, fmt.Sprintf(format, args...))
		}
		if b.MinFlows > 0 && v.Flows < b.MinFlows {
			fail("flows %d < min %d", v.Flows, b.MinFlows)
		}
		if b.MaxFlowsFailed > 0 && v.FlowsFailed > b.MaxFlowsFailed {
			fail("flows failed %d > max %d", v.FlowsFailed, b.MaxFlowsFailed)
		}
		if b.MinDelivered > 0 && v.Delivered < b.MinDelivered {
			fail("delivered %d < min %d", v.Delivered, b.MinDelivered)
		}
		if b.MinRevoked > 0 && v.Revoked < b.MinRevoked {
			fail("revoked %d < min %d", v.Revoked, b.MinRevoked)
		}
		if b.MinResolved > 0 && v.Resolved < b.MinResolved {
			fail("resolved %d < min %d", v.Resolved, b.MinResolved)
		}
		if b.MinFlashArrivals > 0 && v.FlashArrivals < b.MinFlashArrivals {
			fail("flash arrivals %d < min %d", v.FlashArrivals, b.MinFlashArrivals)
		}
		if b.ShutoffsComplete {
			want := 0
			for _, ph := range r.spec.Phases {
				for _, a := range ph.Actions {
					if a.Op == OpShutoff {
						want += a.Count
					}
				}
			}
			if want > len(r.flows) {
				want = len(r.flows)
			}
			if v.ShutoffsFiled < want {
				fail("shutoffs filed %d < requested %d (evidence needs a data wave before the shutoff)", v.ShutoffsFiled, want)
			}
			if v.ShutoffsAccepted < v.ShutoffsFiled {
				fail("shutoffs accepted %d < filed %d", v.ShutoffsAccepted, v.ShutoffsFiled)
			}
		}
	}
	v.OK = ok && len(v.Failures) == 0
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
