// Package scenario is the declarative scenario DSL: a JSON (or struct)
// specification of a whole simulation run — topology, host population,
// attacker mix, chaos, virtual-time phases of actions, invariant
// selection and pass/fail bounds — plus a generic runner that compiles
// a Spec into the facade primitives (Topology, WithChaos, WithAttacker,
// WithLifetimes, WithDissemination) and executes it on internal/netsim.
//
// Every chaotic decision of a run is captured as a seq-stamped fault
// schedule (netsim.CaptureFaults); re-running a spec against its
// recorded schedule reproduces the run bit-exactly, and a hand-edited
// schedule bends the network without touching any code. The hand-coded
// scenarios E6 and E7 (internal/experiments) are expressible as specs;
// the parity tests in this package prove the compiled form equivalent.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"apna"
	"apna/internal/invariant"
	"apna/internal/population"
)

// ErrBadSpec wraps every specification validation failure.
var ErrBadSpec = errors.New("scenario: invalid spec")

// Duration is a time.Duration that marshals as a Go duration string
// ("10ms") and unmarshals from either a string or integer nanoseconds.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "10ms"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("scenario: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// Spec is a complete declarative scenario.
type Spec struct {
	// Name identifies the scenario in verdicts and artifacts.
	Name string `json:"name"`
	// Seed drives the deterministic simulation.
	Seed int64 `json:"seed"`
	// Topology lays out ASes, links and hosts.
	Topology TopologySpec `json:"topology"`
	// Chaos, when set, applies to every inter-AS link.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
	// Attackers are rogue devices attached to ASes.
	Attackers []AttackerSpec `json:"attackers,omitempty"`
	// Lifetimes, when set, starts the EphID lifecycle engine.
	Lifetimes *LifetimesSpec `json:"lifetimes,omitempty"`
	// Dissemination, when set, starts revocation-digest dissemination.
	Dissemination *DissemSpec `json:"dissemination,omitempty"`
	// Phases execute in order; each phase's actions share one await of
	// the virtual timeline (overlapping operations), and the next phase
	// starts only after the timeline quiesces.
	Phases []PhaseSpec `json:"phases"`
	// Invariants selects the paper properties to referee (names from
	// internal/invariant.Names); empty means no referee.
	Invariants []string `json:"invariants,omitempty"`
	// Bounds are the verdict's pass/fail thresholds.
	Bounds *Bounds `json:"bounds,omitempty"`
}

// TopologySpec describes the AS graph and host population. Hosts are
// named "h<as>-<idx>" with two-digit zero padding, matching the
// hand-coded scenarios.
type TopologySpec struct {
	// Kind selects the generator: "full-mesh", "line", "star" or
	// "as-graph".
	Kind string `json:"kind"`
	// FirstAID numbers the first AS (0 means 100).
	FirstAID uint32 `json:"first_aid,omitempty"`
	// ASes is the AS count for full-mesh/line/star (star: center plus
	// ASes-1 leaves).
	ASes int `json:"ases,omitempty"`
	// HostsPerAS bootstraps this many hosts in every AS.
	HostsPerAS int `json:"hosts_per_as"`
	// LinkLatency is the one-way inter-AS latency.
	LinkLatency Duration `json:"link_latency"`
	// Core/Mid/Stubs/ProvidersPerAS size the "as-graph"
	// provider/customer hierarchy (see apna.ASGraphConfig).
	Core           int `json:"core,omitempty"`
	Mid            int `json:"mid,omitempty"`
	Stubs          int `json:"stubs,omitempty"`
	ProvidersPerAS int `json:"providers_per_as,omitempty"`
	// CoreLatency is the core-core latency for "as-graph" (0: LinkLatency).
	CoreLatency Duration `json:"core_latency,omitempty"`
}

// ChaosSpec mirrors apna.ChaosConfig with JSON-friendly durations.
type ChaosSpec struct {
	Loss         float64         `json:"loss,omitempty"`
	Jitter       Duration        `json:"jitter,omitempty"`
	DupProb      float64         `json:"dup_prob,omitempty"`
	ReorderProb  float64         `json:"reorder_prob,omitempty"`
	ReorderDelay Duration        `json:"reorder_delay,omitempty"`
	Partitions   []PartitionSpec `json:"partitions,omitempty"`
}

// PartitionSpec is a timed partition window on every inter-AS link
// (for single-link partitions use the "partition" action instead).
type PartitionSpec struct {
	From  Duration `json:"from"`
	Until Duration `json:"until"`
}

// AttackerSpec attaches a named attacker to an AS, optionally
// wiretapping one inter-AS link.
type AttackerSpec struct {
	Name string `json:"name"`
	AS   uint32 `json:"as"`
	// Tap, when set, is the [a, b] inter-AS link the attacker wiretaps.
	Tap []uint32 `json:"tap,omitempty"`
}

// LifetimesSpec mirrors apna.Lifetimes with JSON-friendly durations.
type LifetimesSpec struct {
	RenewLead        Duration `json:"renew_lead,omitempty"`
	CheckInterval    Duration `json:"check_interval,omitempty"`
	GCInterval       Duration `json:"gc_interval,omitempty"`
	MigrateRetry     Duration `json:"migrate_retry,omitempty"`
	RenewLifetime    uint32   `json:"renew_lifetime_s,omitempty"`
	RevokedRetention Duration `json:"revoked_retention,omitempty"`
}

// DissemSpec mirrors apna.Dissemination.
type DissemSpec struct {
	Interval Duration `json:"interval"`
	// Mode is "mesh" (default) or "relay".
	Mode          string `json:"mode,omitempty"`
	SnapshotEvery int    `json:"snapshot_every,omitempty"`
}

// PhaseSpec is one virtual-time phase: its actions run in order, the
// asynchronous operations they start share one await, and post-await
// steps (shutoff ground truth, resolve expectations) run once the
// timeline has quiesced.
type PhaseSpec struct {
	Name    string       `json:"name"`
	Actions []ActionSpec `json:"actions"`
}

// Action ops.
const (
	// OpIssue requests PerHost EphIDs (lifetime LifetimeS) on every
	// host, all overlapping.
	OpIssue = "issue"
	// OpDial establishes FlowsPerHost flows per host round-robin across
	// the population (the E6/E7 peer spread), dialing each peer's last
	// issued EphID.
	OpDial = "dial"
	// OpSend sends one data wave ("flow %d wave %d") on every
	// established flow.
	OpSend = "send"
	// OpShutoff files Count mid-flight shutoffs using retained
	// evidence; see ShutoffSpec fields for target selection, ground
	// truth and identity theft.
	OpShutoff = "shutoff"
	// OpAttack makes every attacker probe the selected attack surfaces.
	OpAttack = "attack"
	// OpPartition partitions the inter-AS link A-B for Duration
	// starting now.
	OpPartition = "partition"
	// OpPublish issues Host a receive-only EphID (plus a serving data
	// EphID) and registers it under As in the host's AS zone.
	OpPublish = "publish"
	// OpResolve runs the chained inter-domain lookup of As from From,
	// checks Expect ("ok" or "nxdomain"), and optionally dials the
	// resolved certificate.
	OpResolve = "resolve"
	// OpFlashcrowd pushes a modeled population with a flash-crowd
	// arrival spike through the control-plane engines
	// (internal/population) and folds its deterministic counters and
	// trace hash into the verdict.
	OpFlashcrowd = "flashcrowd"
	// OpRun advances virtual time by Duration.
	OpRun = "run"
)

// ActionSpec is one step of a phase; Op selects which of the field
// groups below applies.
type ActionSpec struct {
	Op string `json:"op"`

	// issue
	PerHost   int    `json:"per_host,omitempty"`
	LifetimeS uint32 `json:"lifetime_s,omitempty"`

	// dial
	FlowsPerHost int `json:"flows_per_host,omitempty"`

	// shutoff
	Count            int  `json:"count,omitempty"`
	PreferAttackerAS bool `json:"prefer_attacker_as,omitempty"`
	RecordRevoked    bool `json:"record_revoked,omitempty"`
	Steal            bool `json:"steal,omitempty"`

	// attack
	Surfaces []string `json:"surfaces,omitempty"`
	Replay   bool     `json:"replay,omitempty"`

	// partition
	A        uint32   `json:"a,omitempty"`
	B        uint32   `json:"b,omitempty"`
	Duration Duration `json:"duration,omitempty"` // also: run

	// publish / resolve
	Host   string `json:"host,omitempty"`
	From   string `json:"from,omitempty"`
	As     string `json:"name,omitempty"`
	Expect string `json:"expect,omitempty"`
	Dial   bool   `json:"dial,omitempty"`

	// flashcrowd
	Population *PopulationSpec `json:"population,omitempty"`
}

// Attack surface names for ActionSpec.Surfaces.
const (
	SurfaceForged  = "forged"
	SurfaceForeign = "foreign"
	SurfaceSpoofed = "spoofed"
	SurfaceFramed  = "framed"
	SurfaceExpired = "expired"
)

// PopulationSpec sizes an OpFlashcrowd run. The trace is recorded so
// the verdict carries a deterministic hash of the whole modeled
// workload.
type PopulationSpec struct {
	Hosts      int     `json:"hosts"`
	Ticks      int     `json:"ticks"`
	Workers    int     `json:"workers"`
	FlashMult  float64 `json:"flash_mult,omitempty"`
	FlashTick  int     `json:"flash_tick,omitempty"`
	FlashTicks int     `json:"flash_ticks,omitempty"`
}

// Bounds are the verdict's pass/fail thresholds; zero values impose no
// bound. ShutoffsComplete additionally requires every filed shutoff to
// be accepted and the filed count to reach the requested count.
type Bounds struct {
	MinFlows         int    `json:"min_flows,omitempty"`
	MaxFlowsFailed   int    `json:"max_flows_failed,omitempty"`
	MinDelivered     int    `json:"min_delivered,omitempty"`
	MinRevoked       int    `json:"min_revoked,omitempty"`
	MinResolved      int    `json:"min_resolved,omitempty"`
	MinFlashArrivals uint64 `json:"min_flash_arrivals,omitempty"`
	ShutoffsComplete bool   `json:"shutoffs_complete,omitempty"`
}

// Parse decodes and validates a JSON spec. Unknown fields are rejected
// so typos fail loudly instead of silently deforming the scenario.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// aids returns the set of AIDs the topology declares, in order.
func (t *TopologySpec) aids() []uint32 {
	first := t.FirstAID
	if first == 0 {
		first = 100
	}
	n := t.ASes
	if t.Kind == "as-graph" {
		n = t.Core + t.Mid + t.Stubs
	}
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, first+uint32(i))
	}
	return out
}

// linked reports whether the topology declares a direct a-b link.
func (t *TopologySpec) linked(a, b uint32) bool {
	aids := t.aids()
	idx := func(aid uint32) int {
		for i, v := range aids {
			if v == aid {
				return i
			}
		}
		return -1
	}
	ia, ib := idx(a), idx(b)
	if ia < 0 || ib < 0 || ia == ib {
		return false
	}
	switch t.Kind {
	case "full-mesh":
		return true
	case "line":
		return ia-ib == 1 || ib-ia == 1
	case "star":
		return ia == 0 || ib == 0
	case "as-graph":
		// Conservative: core-core links always exist; customer-provider
		// assignment is deterministic but involved, so partitions in
		// as-graph scenarios are only validated against the core mesh.
		return ia < t.Core && ib < t.Core
	}
	return false
}

// Validate checks the whole spec: topology shape, attacker placement,
// chaos ranges, phase actions and their cross-references.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadSpec)
	}
	t := &s.Topology
	switch t.Kind {
	case "full-mesh", "line", "star":
		if t.ASes < 1 {
			return fmt.Errorf("%w: topology %q needs ases >= 1", ErrBadSpec, t.Kind)
		}
	case "as-graph":
		if t.Core < 1 || t.Mid < 0 || t.Stubs < 0 || t.ProvidersPerAS < 0 {
			return fmt.Errorf("%w: as-graph needs core >= 1 and non-negative tiers", ErrBadSpec)
		}
		if t.Stubs > 0 && t.Mid < 1 {
			return fmt.Errorf("%w: as-graph stubs need a mid tier", ErrBadSpec)
		}
	default:
		return fmt.Errorf("%w: unknown topology kind %q", ErrBadSpec, t.Kind)
	}
	// Size caps keep hostile or typo'd specs from allocating the world
	// before anything runs.
	const maxASes, maxHostsPerAS = 4096, 4096
	for _, n := range []int{t.ASes, t.Core, t.Mid, t.Stubs} {
		if n > maxASes {
			return fmt.Errorf("%w: topology tier %d exceeds cap %d", ErrBadSpec, n, maxASes)
		}
	}
	if t.HostsPerAS < 0 || t.HostsPerAS > maxHostsPerAS {
		return fmt.Errorf("%w: hosts_per_as %d outside [0,%d]", ErrBadSpec, t.HostsPerAS, maxHostsPerAS)
	}
	if t.LinkLatency < 0 || t.CoreLatency < 0 {
		return fmt.Errorf("%w: negative link latency", ErrBadSpec)
	}
	aids := make(map[uint32]bool)
	for _, aid := range t.aids() {
		aids[aid] = true
	}

	if c := s.Chaos; c != nil {
		for _, p := range []float64{c.Loss, c.DupProb, c.ReorderProb} {
			if p < 0 || p > 1 {
				return fmt.Errorf("%w: chaos probability %v outside [0,1]", ErrBadSpec, p)
			}
		}
		if c.Jitter < 0 || c.ReorderDelay < 0 {
			return fmt.Errorf("%w: negative chaos delay", ErrBadSpec)
		}
		for _, iv := range c.Partitions {
			if iv.From < 0 || iv.Until <= iv.From {
				return fmt.Errorf("%w: partition window [%v,%v) is empty or negative",
					ErrBadSpec, iv.From.D(), iv.Until.D())
			}
		}
	}

	attackers := make(map[string]bool)
	for _, a := range s.Attackers {
		if a.Name == "" {
			return fmt.Errorf("%w: attacker with empty name", ErrBadSpec)
		}
		if attackers[a.Name] {
			return fmt.Errorf("%w: attacker %q declared twice", ErrBadSpec, a.Name)
		}
		attackers[a.Name] = true
		if !aids[a.AS] {
			return fmt.Errorf("%w: attacker %q on unknown AS %d", ErrBadSpec, a.Name, a.AS)
		}
		if len(a.Tap) > 0 {
			if len(a.Tap) != 2 {
				return fmt.Errorf("%w: attacker %q tap wants [a, b], got %v", ErrBadSpec, a.Name, a.Tap)
			}
			if !t.linked(a.Tap[0], a.Tap[1]) {
				return fmt.Errorf("%w: attacker %q taps missing link %d-%d",
					ErrBadSpec, a.Name, a.Tap[0], a.Tap[1])
			}
		}
	}

	for _, name := range s.Invariants {
		if !invariant.Known(name) {
			return fmt.Errorf("%w: unknown invariant %q (have %v)", ErrBadSpec, name, invariant.Names())
		}
	}

	if len(s.Phases) == 0 {
		return fmt.Errorf("%w: no phases", ErrBadSpec)
	}
	hostNames := make(map[string]bool)
	for i, aid := range t.aids() {
		for j := 0; j < t.HostsPerAS; j++ {
			_ = aid
			hostNames[fmt.Sprintf("h%02d-%02d", i, j)] = true
		}
	}
	published := make(map[string]bool)
	issued, dialed := false, false
	for pi := range s.Phases {
		ph := &s.Phases[pi]
		for ai := range ph.Actions {
			a := &ph.Actions[ai]
			where := fmt.Sprintf("phase %d (%s) action %d (%s)", pi, ph.Name, ai, a.Op)
			switch a.Op {
			case OpIssue:
				if a.PerHost < 1 || a.LifetimeS < 1 {
					return fmt.Errorf("%w: %s needs per_host and lifetime_s >= 1", ErrBadSpec, where)
				}
				issued = true
			case OpDial:
				if a.FlowsPerHost < 1 {
					return fmt.Errorf("%w: %s needs flows_per_host >= 1", ErrBadSpec, where)
				}
				if !issued {
					return fmt.Errorf("%w: %s before any issue action", ErrBadSpec, where)
				}
				dialed = true
			case OpSend:
				if !dialed {
					return fmt.Errorf("%w: %s before any dial action", ErrBadSpec, where)
				}
			case OpShutoff:
				if a.Count < 1 {
					return fmt.Errorf("%w: %s needs count >= 1", ErrBadSpec, where)
				}
				if !dialed {
					return fmt.Errorf("%w: %s before any dial action", ErrBadSpec, where)
				}
				if a.Steal && len(s.Attackers) == 0 {
					return fmt.Errorf("%w: %s steals identities without attackers", ErrBadSpec, where)
				}
			case OpAttack:
				if len(s.Attackers) == 0 {
					return fmt.Errorf("%w: %s without attackers", ErrBadSpec, where)
				}
				for _, sf := range a.Surfaces {
					switch sf {
					case SurfaceForged, SurfaceForeign, SurfaceSpoofed, SurfaceFramed, SurfaceExpired:
					default:
						return fmt.Errorf("%w: %s has unknown surface %q", ErrBadSpec, where, sf)
					}
				}
			case OpPartition:
				if a.Duration <= 0 {
					return fmt.Errorf("%w: %s needs a positive duration", ErrBadSpec, where)
				}
				if !t.linked(a.A, a.B) {
					return fmt.Errorf("%w: %s partitions missing link %d-%d", ErrBadSpec, where, a.A, a.B)
				}
			case OpPublish:
				if !hostNames[a.Host] {
					return fmt.Errorf("%w: %s on unknown host %q", ErrBadSpec, where, a.Host)
				}
				if a.As == "" {
					return fmt.Errorf("%w: %s needs a name", ErrBadSpec, where)
				}
				published[a.As] = true
			case OpResolve:
				if !hostNames[a.From] {
					return fmt.Errorf("%w: %s from unknown host %q", ErrBadSpec, where, a.From)
				}
				if a.As == "" {
					return fmt.Errorf("%w: %s needs a name", ErrBadSpec, where)
				}
				switch a.Expect {
				case "ok", "nxdomain":
				default:
					return fmt.Errorf("%w: %s expect must be \"ok\" or \"nxdomain\", got %q",
						ErrBadSpec, where, a.Expect)
				}
				if a.Expect == "ok" && !published[a.As] {
					return fmt.Errorf("%w: %s expects %q resolved but nothing published it",
						ErrBadSpec, where, a.As)
				}
				if a.Dial && a.Expect != "ok" {
					return fmt.Errorf("%w: %s dials a name expected to be denied", ErrBadSpec, where)
				}
			case OpFlashcrowd:
				p := a.Population
				if p == nil || p.Hosts < 1 || p.Ticks < 1 {
					return fmt.Errorf("%w: %s needs population hosts and ticks >= 1", ErrBadSpec, where)
				}
				if p.Workers < 1 {
					return fmt.Errorf("%w: %s needs an explicit worker count (determinism)", ErrBadSpec, where)
				}
				cfg := population.DefaultConfig()
				cfg.Hosts, cfg.Ticks, cfg.Workers = p.Hosts, p.Ticks, p.Workers
				cfg.FlashMult, cfg.FlashTick, cfg.FlashTicks = p.FlashMult, p.FlashTick, p.FlashTicks
				if err := cfg.Validate(); err != nil {
					return fmt.Errorf("%w: %s: %w", ErrBadSpec, where, err)
				}
			case OpRun:
				if a.Duration <= 0 {
					return fmt.Errorf("%w: %s needs a positive duration", ErrBadSpec, where)
				}
			default:
				return fmt.Errorf("%w: %s is not a known op", ErrBadSpec, where)
			}
		}
	}
	return nil
}

// topoOptions compiles the topology (plus chaos, attackers, lifecycle
// and dissemination) into facade options.
func (s *Spec) topoOptions() []apna.TopologyOption {
	t := &s.Topology
	first := apna.AID(t.FirstAID)
	if first == 0 {
		first = 100
	}
	var topo []apna.TopologyOption
	switch t.Kind {
	case "full-mesh":
		topo = append(topo, apna.WithFullMesh(first, t.ASes, t.LinkLatency.D()))
	case "line":
		topo = append(topo, apna.WithLine(first, t.ASes, t.LinkLatency.D()))
	case "star":
		topo = append(topo, apna.WithStar(first, t.ASes-1, t.LinkLatency.D()))
	case "as-graph":
		core := t.CoreLatency.D()
		if core == 0 {
			core = t.LinkLatency.D()
		}
		topo = append(topo, apna.WithASGraph(first, apna.ASGraphConfig{
			Core: t.Core, Mid: t.Mid, Stubs: t.Stubs,
			ProvidersPerAS: t.ProvidersPerAS,
			CoreLatency:    core, Latency: t.LinkLatency.D(),
		}))
	}
	if c := s.Chaos; c != nil {
		cfg := apna.ChaosConfig{
			Loss: c.Loss, Jitter: c.Jitter.D(), DupProb: c.DupProb,
			ReorderProb: c.ReorderProb, ReorderDelay: c.ReorderDelay.D(),
		}
		for _, iv := range c.Partitions {
			cfg.Partitions = append(cfg.Partitions,
				apna.ChaosInterval{From: iv.From.D(), Until: iv.Until.D()})
		}
		topo = append(topo, apna.WithChaos(cfg))
	}
	for i, aid := range t.aids() {
		names := make([]string, t.HostsPerAS)
		for j := range names {
			names[j] = fmt.Sprintf("h%02d-%02d", i, j)
		}
		if len(names) > 0 {
			topo = append(topo, apna.WithHosts(apna.AID(aid), names...))
		}
	}
	for _, a := range s.Attackers {
		topo = append(topo, apna.WithAttacker(apna.AID(a.AS), a.Name))
	}
	if lt := s.Lifetimes; lt != nil {
		topo = append(topo, apna.WithLifetimes(apna.Lifetimes{
			RenewLead: lt.RenewLead.D(), CheckInterval: lt.CheckInterval.D(),
			GCInterval: lt.GCInterval.D(), MigrateRetry: lt.MigrateRetry.D(),
			RenewLifetime: lt.RenewLifetime, RevokedRetention: lt.RevokedRetention.D(),
		}))
	}
	if d := s.Dissemination; d != nil {
		mode := apna.DisseminateMesh
		if d.Mode == "relay" {
			mode = apna.DisseminateRelay
		}
		topo = append(topo, apna.WithDissemination(apna.Dissemination{
			Interval: d.Interval.D(), Mode: mode, SnapshotEvery: d.SnapshotEvery,
		}))
	}
	return topo
}
