package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// validBase returns a minimal spec every validator case mutates.
func validBase() string {
	return `{
		"name": "t",
		"seed": 1,
		"topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
		"phases": [{"name": "p", "actions": [{"op": "issue", "per_host": 1, "lifetime_s": 60}]}]
	}`
}

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(validBase()))
	if err != nil {
		t.Fatalf("valid base rejected: %v", err)
	}
	if s.Name != "t" || s.Topology.LinkLatency.D().String() != "1ms" {
		t.Fatalf("mis-parsed: %+v", s)
	}
}

func TestValidatorRejections(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"missing name", `{"topology": {"kind": "line", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "missing name"},
		{"unknown topology", `{"name": "t", "topology": {"kind": "torus", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "unknown topology"},
		{"zero ases", `{"name": "t", "topology": {"kind": "full-mesh", "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "ases >= 1"},
		{"ases over cap", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 100000, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "exceeds cap"},
		{"as-graph stubs without mid", `{"name": "t", "topology": {"kind": "as-graph", "core": 2, "stubs": 3, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "mid tier"},
		{"chaos loss out of range", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"chaos": {"loss": 1.5},
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "outside [0,1]"},
		{"empty partition window", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"chaos": {"partitions": [{"from": "5ms", "until": "5ms"}]},
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "empty or negative"},
		{"attacker on unknown AS", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"attackers": [{"name": "m", "as": 999}],
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "unknown AS"},
		{"attacker taps missing link", `{"name": "t", "topology": {"kind": "line", "ases": 3, "hosts_per_as": 1, "link_latency": "1ms"},
			"attackers": [{"name": "m", "as": 100, "tap": [100, 102]}],
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "missing link"},
		{"duplicate attacker", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"attackers": [{"name": "m", "as": 100}, {"name": "m", "as": 101}],
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "declared twice"},
		{"unknown invariant", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"invariants": ["no-such-property"],
			"phases": [{"name": "p", "actions": [{"op": "run", "duration": "1ms"}]}]}`, "unknown invariant"},
		{"no phases", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"}}`, "no phases"},
		{"dial before issue", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "dial", "flows_per_host": 1}]}]}`, "before any issue"},
		{"send before dial", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "send"}]}]}`, "before any dial"},
		{"shutoff zero count", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [
				{"op": "issue", "per_host": 2, "lifetime_s": 60},
				{"op": "dial", "flows_per_host": 1},
				{"op": "shutoff"}]}]}`, "count >= 1"},
		{"steal without attackers", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [
				{"op": "issue", "per_host": 2, "lifetime_s": 60},
				{"op": "dial", "flows_per_host": 1},
				{"op": "shutoff", "count": 1, "steal": true}]}]}`, "without attackers"},
		{"attack without attackers", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "attack", "surfaces": ["forged"]}]}]}`, "without attackers"},
		{"unknown surface", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"attackers": [{"name": "m", "as": 100}],
			"phases": [{"name": "p", "actions": [{"op": "attack", "surfaces": ["quantum"]}]}]}`, "unknown surface"},
		{"partition needs duration", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "partition", "a": 100, "b": 101}]}]}`, "positive duration"},
		{"partition missing link", `{"name": "t", "topology": {"kind": "line", "ases": 3, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "partition", "a": 100, "b": 102, "duration": "1ms"}]}]}`, "missing link"},
		{"publish unknown host", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "publish", "host": "h09-00", "name": "x.as100"}]}]}`, "unknown host"},
		{"resolve bad expectation", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "resolve", "from": "h00-00", "name": "x.as100", "expect": "maybe"}]}]}`, "expect must be"},
		{"resolve unpublished ok", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "resolve", "from": "h00-00", "name": "x.as100", "expect": "ok"}]}]}`, "nothing published"},
		{"dial a denied name", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "resolve", "from": "h00-00", "name": "x.as100", "expect": "nxdomain", "dial": true}]}]}`, "expected to be denied"},
		{"flashcrowd without population", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "flashcrowd"}]}]}`, "hosts and ticks"},
		{"flashcrowd without workers", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "flashcrowd", "population": {"hosts": 10, "ticks": 5}}]}]}`, "worker count"},
		{"flashcrowd bad flash window", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "flashcrowd", "population": {"hosts": 10, "ticks": 5, "workers": 1, "flash_mult": 4}}]}]}`, "flash"},
		{"run needs duration", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "run"}]}]}`, "positive duration"},
		{"unknown op", `{"name": "t", "topology": {"kind": "full-mesh", "ases": 2, "hosts_per_as": 1, "link_latency": "1ms"},
			"phases": [{"name": "p", "actions": [{"op": "teleport"}]}]}`, "not a known op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("accepted invalid spec")
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("error %v does not wrap ErrBadSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(validBase(), `"seed": 1,`, `"seed": 1, "sede": 2,`, 1)
	if _, err := Parse([]byte(bad)); err == nil {
		t.Fatalf("typo'd field accepted")
	}
}

func TestDurationForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"1h2m"`), &d); err != nil || d.D().String() != "1h2m0s" {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`1500000`), &d); err != nil || d.D().String() != "1.5ms" {
		t.Fatalf("integer form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Fatalf("garbage duration accepted")
	}
	raw, err := json.Marshal(Duration(1500000))
	if err != nil || string(raw) != `"1.5ms"` {
		t.Fatalf("marshal: %s %v", raw, err)
	}
}

// TestDeterminism is the DSL's core property: one spec and seed is one
// run — bit-identical trace hash on every execution — and the seed is
// live, so sweeping it explores genuinely different chaos.
func TestDeterminism(t *testing.T) {
	s := loadSpec(t, "e7.json")
	a := runSpec(t, s, RunOptions{})
	b := runSpec(t, s, RunOptions{})
	if a.Verdict.TraceHash != b.Verdict.TraceHash {
		t.Errorf("same spec and seed produced different traces:\n%s\n%s",
			a.Verdict.TraceHash, b.Verdict.TraceHash)
	}
	if len(a.Schedule.Events) != len(b.Schedule.Events) {
		t.Errorf("fault schedules differ: %d vs %d events", len(a.Schedule.Events), len(b.Schedule.Events))
	}

	s2 := *s
	s2.Seed = s.Seed + 1
	c := runSpec(t, &s2, RunOptions{})
	if c.Verdict.TraceHash == a.Verdict.TraceHash {
		t.Errorf("different seeds produced identical traces (%s)", a.Verdict.TraceHash)
	}
}

// FuzzScenarioSpec hardens the parser: arbitrary bytes must never
// panic, and anything accepted must survive a marshal/parse round trip
// with an unchanged canonical hash.
func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(validBase()))
	f.Add([]byte(`{"name": "x"}`))
	f.Add([]byte(`{"topology": {"kind": "full-mesh", "ases": 99999999999}}`))
	f.Add([]byte(`{"name": "x", "phases": [{"actions": [{"op": "run", "duration": -5}]}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		h1, err := s.SpecHash()
		if err != nil {
			t.Fatalf("hash of accepted spec: %v", err)
		}
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal of accepted spec: %v", err)
		}
		s2, err := Parse(raw)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, raw)
		}
		h2, err := s2.SpecHash()
		if err != nil {
			t.Fatalf("hash of round-tripped spec: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("round trip changed the canonical hash:\n%s\n%s", h1, h2)
		}
	})
}
