package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"apna/internal/invariant"
	"apna/internal/netsim"
)

// Verdict is a scenario run's deterministic report: every field is a
// pure function of (spec, seed) — no wall-clock measurements — so a
// replayed run must reproduce it byte for byte.
type Verdict struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	SpecHash string `json:"spec_hash"`
	// OK means every selected invariant held and every bound was met.
	OK bool `json:"ok"`

	Hosts            int `json:"hosts"`
	Flows            int `json:"flows"`
	FlowsFailed      int `json:"flows_failed"`
	MessagesSent     int `json:"messages_sent"`
	Delivered        int `json:"delivered"`
	ShutoffsFiled    int `json:"shutoffs_filed"`
	ShutoffsAccepted int `json:"shutoffs_accepted"`
	Revoked          int `json:"revoked"`
	Resolved         int `json:"resolved"`
	Denied           int `json:"denied"`
	ResolvedDials    int `json:"resolved_dials,omitempty"`

	Attacks  map[string]uint64 `json:"attacks,omitempty"`
	Defenses map[string]uint64 `json:"defenses,omitempty"`

	PopArrivals   uint64 `json:"pop_arrivals,omitempty"`
	FlashArrivals uint64 `json:"flash_arrivals,omitempty"`
	PopTraceHash  string `json:"pop_trace_hash,omitempty"`

	Invariants *invariant.Report `json:"invariants,omitempty"`

	// Events is the simulator event count; VirtualNs the virtual time
	// the scenario consumed after build; Faults the number of chaos
	// decisions made (= the fault schedule's length).
	Events    uint64 `json:"events"`
	VirtualNs int64  `json:"virtual_ns"`
	Faults    int    `json:"faults"`

	// TraceHash digests the run: the full fault schedule plus every
	// deterministic counter above. Equal hashes mean equal runs.
	TraceHash string `json:"trace_hash"`

	// Failures lists bound violations (empty on a pass).
	Failures []string `json:"failures,omitempty"`
}

// JSON renders the canonical verdict artifact: indented, stable field
// order, trailing newline.
func (v *Verdict) JSON() ([]byte, error) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// computeTraceHash digests the verdict body (TraceHash cleared) plus
// the run's fault schedule.
func (v *Verdict) computeTraceHash(events []netsim.FaultEvent) error {
	cp := *v
	cp.TraceHash = ""
	body, err := json.Marshal(&cp)
	if err != nil {
		return err
	}
	evs, err := json.Marshal(events)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(append(body, evs...))
	v.TraceHash = hex.EncodeToString(sum[:])
	return nil
}

// SpecHash digests the canonical (re-marshaled) form of the spec, so
// formatting and key order in the source file do not matter.
func (s *Spec) SpecHash() (string, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// ScheduleVersion is the fault-schedule file format version.
const ScheduleVersion = 1

// Schedule is a recorded fault schedule: every chaos decision of one
// run, bound to the spec and seed that produced it.
type Schedule struct {
	Version  int                 `json:"version"`
	Seed     int64               `json:"seed"`
	SpecHash string              `json:"spec_hash"`
	Events   []netsim.FaultEvent `json:"events"`
}

// LoadSchedule reads a schedule file.
func LoadSchedule(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc Schedule
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if sc.Version != ScheduleVersion {
		return nil, fmt.Errorf("%s: schedule version %d, want %d", path, sc.Version, ScheduleVersion)
	}
	return &sc, nil
}

// Save writes the schedule as indented JSON.
func (sc *Schedule) Save(path string) error {
	raw, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
