// Package session implements APNA's end-to-end encrypted communication
// sessions (paper Section IV-D).
//
// Two hosts derive a shared symmetric key from the X25519 keys bound to
// their EphIDs (Section IV-D1) and encrypt every data packet with it
// (Section IV-D2). Perfect forward secrecy holds because the EphID keys
// are generated fresh per EphID and never derived from long-term
// material: compromising K-_AS or K-_H later reveals nothing about past
// session keys (Section VI-B).
//
// The package also implements the receiver-side replay window for the
// per-packet nonce of Section VIII-D.
package session

import (
	"errors"
	"fmt"

	"apna/internal/crypto"
	"apna/internal/ephid"
)

// Errors returned by session operations.
var (
	// ErrReplay means a packet's nonce was already accepted (or is too
	// old to track) — the replay defence of Section VIII-D.
	ErrReplay = errors.New("session: replayed or stale nonce")
	// ErrDecrypt re-exports the AEAD failure for convenience.
	ErrDecrypt = crypto.ErrDecrypt
)

// Session is one end of an established, encrypted communication session
// between two EphIDs. Both ends hold the same symmetric key but
// different sealing directions, so their nonce spaces are disjoint.
type Session struct {
	local, peer ephid.EphID
	seal        *crypto.AEAD
	open        *crypto.AEAD
	sendSeq     uint64
	replay      Window
}

// New derives the session key kE1E2 and returns the local end of the
// session. localPriv is the X25519 private key bound to the local EphID;
// peerDHPub is the peer's certified public key.
//
// Both ends compute the identical key: the HKDF salt is the
// lexicographically ordered concatenation of the two EphIDs, so the
// derivation is symmetric (Section IV-D1).
func New(localPriv *crypto.KeyPair, peerDHPub []byte, local, peer ephid.EphID) (*Session, error) {
	secret, err := localPriv.SharedSecret(peerDHPub)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	salt := make([]byte, 0, 2*ephid.Size)
	dir := byte(0)
	if lexLess(local, peer) {
		salt = append(append(salt, local[:]...), peer[:]...)
	} else {
		salt = append(append(salt, peer[:]...), local[:]...)
		dir = 1
	}
	key := crypto.DeriveSessionKey(secret, salt)

	seal, err := crypto.NewAEAD(key, dir)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	open, err := crypto.NewAEAD(key, 1-dir)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return &Session{local: local, peer: peer, seal: seal, open: open, replay: NewWindow(1024)}, nil
}

// Local returns the local EphID of the session.
func (s *Session) Local() ephid.EphID { return s.local }

// Peer returns the peer EphID of the session.
func (s *Session) Peer() ephid.EphID { return s.peer }

// NextSeq allocates the next send sequence number, carried in the APNA
// header's nonce field.
func (s *Session) NextSeq() uint64 {
	s.sendSeq++
	return s.sendSeq
}

// Seal encrypts plaintext for the peer, binding aad (typically the
// immutable parts of the packet header).
func (s *Session) Seal(plaintext, aad []byte) ([]byte, error) {
	return s.seal.Seal(nil, plaintext, aad)
}

// Open decrypts a message from the peer.
func (s *Session) Open(msg, aad []byte) ([]byte, error) {
	return s.open.Open(nil, msg, aad)
}

// AcceptSeq runs the anti-replay check for a received packet nonce. It
// must be called only after the packet authenticated successfully
// (otherwise an attacker could poison the window with forged nonces).
func (s *Session) AcceptSeq(seq uint64) error {
	if !s.replay.Accept(seq) {
		return ErrReplay
	}
	return nil
}

func lexLess(a, b ephid.EphID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
