package session

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"apna/internal/crypto"
	"apna/internal/ephid"
)

func pair(t *testing.T) (*Session, *Session) {
	t.Helper()
	aKey, err := crypto.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	bKey, err := crypto.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	var aID, bID ephid.EphID
	aID[0], bID[0] = 1, 2
	a, err := New(aKey, bKey.PublicKey(), aID, bID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(bKey, aKey.PublicKey(), bID, aID)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSessionBidirectional(t *testing.T) {
	a, b := pair(t)
	ct, err := a.Seal([]byte("from a"), []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := b.Open(ct, []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "from a" {
		t.Errorf("pt = %q", pt)
	}
	ct2, err := b.Seal([]byte("from b"), nil)
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := a.Open(ct2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt2) != "from b" {
		t.Errorf("pt2 = %q", pt2)
	}
}

func TestSessionRejectsTamperAndWrongAAD(t *testing.T) {
	a, b := pair(t)
	ct, _ := a.Seal([]byte("secret"), []byte("hdr"))
	bad := append([]byte(nil), ct...)
	bad[len(bad)-1] ^= 1
	if _, err := b.Open(bad, []byte("hdr")); !errors.Is(err, crypto.ErrDecrypt) {
		t.Errorf("tamper: %v", err)
	}
	if _, err := b.Open(ct, []byte("other")); !errors.Is(err, crypto.ErrDecrypt) {
		t.Errorf("aad: %v", err)
	}
}

func TestSessionThirdPartyCannotDecrypt(t *testing.T) {
	a, b := pair(t)
	// Eve with her own keys, even knowing both EphIDs.
	eveKey, _ := crypto.GenerateKeyPair()
	eve, err := New(eveKey, eveKey.PublicKey(), a.Local(), b.Local())
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := a.Seal([]byte("secret"), nil)
	if _, err := eve.Open(ct, nil); err == nil {
		t.Error("eavesdropper decrypted session traffic")
	}
}

func TestSessionPerfectForwardSecrecyShape(t *testing.T) {
	// Two sessions between the same parties with fresh EphID keys must
	// have unrelated keys: ciphertext from session 1 does not open in
	// session 2 (Section VI-B).
	a1, b1 := pair(t)
	_, b2 := pair(t)
	ct, _ := a1.Seal([]byte("past traffic"), nil)
	if _, err := b2.Open(ct, nil); err == nil {
		t.Error("new session opened old traffic — PFS broken")
	}
	if _, err := b1.Open(ct, nil); err != nil {
		t.Errorf("original session failed: %v", err)
	}
}

func TestSessionDeriveSymmetricRegardlessOfOrder(t *testing.T) {
	// The EphID ordering in the salt must make derivation symmetric
	// even when local/peer compare in the other direction.
	aKey, _ := crypto.GenerateKeyPair()
	bKey, _ := crypto.GenerateKeyPair()
	var hi, lo ephid.EphID
	hi[0], lo[0] = 9, 1
	// a is the host with the *larger* EphID this time.
	a, err := New(aKey, bKey.PublicKey(), hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(bKey, aKey.PublicKey(), lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := a.Seal([]byte("x"), nil)
	if _, err := b.Open(ct, nil); err != nil {
		t.Errorf("asymmetric derivation: %v", err)
	}
}

func TestSessionNextSeqMonotonic(t *testing.T) {
	a, _ := pair(t)
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		s := a.NextSeq()
		if s <= prev {
			t.Fatalf("seq %d after %d", s, prev)
		}
		prev = s
	}
}

func TestSessionAcceptSeq(t *testing.T) {
	a, _ := pair(t)
	if err := a.AcceptSeq(1); err != nil {
		t.Fatal(err)
	}
	if err := a.AcceptSeq(1); !errors.Is(err, ErrReplay) {
		t.Errorf("replay: %v", err)
	}
	if err := a.AcceptSeq(5); err != nil {
		t.Errorf("forward jump: %v", err)
	}
	if err := a.AcceptSeq(3); err != nil {
		t.Errorf("in-window out-of-order: %v", err)
	}
}

func TestSessionBadPeerKey(t *testing.T) {
	aKey, _ := crypto.GenerateKeyPair()
	if _, err := New(aKey, make([]byte, 31), ephid.EphID{}, ephid.EphID{}); err == nil {
		t.Error("bad peer key accepted")
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(64)
	if w.Accept(0) {
		t.Error("seq 0 accepted")
	}
	for i := uint64(1); i <= 64; i++ {
		if !w.Accept(i) {
			t.Fatalf("fresh seq %d rejected", i)
		}
	}
	for i := uint64(1); i <= 64; i++ {
		if w.Accept(i) {
			t.Fatalf("duplicate seq %d accepted", i)
		}
	}
	if w.Highest() != 64 {
		t.Errorf("highest = %d", w.Highest())
	}
}

func TestWindowOutOfOrder(t *testing.T) {
	w := NewWindow(64)
	if !w.Accept(50) {
		t.Fatal("seq 50")
	}
	// Everything within the window is still acceptable once.
	for i := uint64(1); i < 50; i++ {
		if !w.Accept(i) {
			t.Fatalf("in-window seq %d rejected", i)
		}
	}
}

func TestWindowTooOld(t *testing.T) {
	w := NewWindow(64)
	if !w.Accept(100) {
		t.Fatal("seq 100")
	}
	if w.Accept(36) {
		t.Error("seq 36 accepted (100-36=64 >= span)")
	}
	if !w.Accept(37) {
		t.Error("seq 37 rejected (just inside window)")
	}
}

func TestWindowBigJumpClears(t *testing.T) {
	w := NewWindow(64)
	for i := uint64(1); i <= 10; i++ {
		w.Accept(i)
	}
	if !w.Accept(10_000) {
		t.Fatal("big jump rejected")
	}
	// Everything old is now out of range.
	if w.Accept(10) {
		t.Error("ancient seq accepted after jump")
	}
	if !w.Accept(9_999) {
		t.Error("in-window seq after jump rejected")
	}
	if w.Accept(10_000) {
		t.Error("duplicate after jump accepted")
	}
}

func TestWindowMinimumSpan(t *testing.T) {
	w := NewWindow(1)
	if got := w.span; got != 64 {
		t.Errorf("span = %d, want 64", got)
	}
	w2 := NewWindow(65)
	if got := w2.span; got != 128 {
		t.Errorf("span = %d, want 128", got)
	}
}

func TestWindowNeverAcceptsTwiceProperty(t *testing.T) {
	f := func(seqs []uint16) bool {
		w := NewWindow(128)
		accepted := make(map[uint64]bool)
		for _, s16 := range seqs {
			seq := uint64(s16%512) + 1
			if w.Accept(seq) {
				if accepted[seq] {
					return false // double accept
				}
				accepted[seq] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowMonotoneDeliveryAllAccepted(t *testing.T) {
	w := NewWindow(256)
	for i := uint64(1); i <= 100_000; i++ {
		if !w.Accept(i) {
			t.Fatalf("monotone seq %d rejected", i)
		}
	}
}

func TestSessionSealOpenSizesProperty(t *testing.T) {
	a, b := pair(t)
	f := func(payload []byte) bool {
		ct, err := a.Seal(payload, nil)
		if err != nil {
			return false
		}
		pt, err := b.Open(ct, nil)
		return err == nil && bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
