package session

// Window is a sliding anti-replay window over 64-bit sequence numbers,
// in the style of the IPsec anti-replay algorithm: it accepts each
// sequence number at most once and rejects numbers older than the window
// span. The destination host runs one per flow to discard duplicate
// packets (Section VIII-D).
type Window struct {
	bitmap  []uint64
	span    uint64
	highest uint64 // highest accepted sequence number; 0 = none yet
}

// NewWindow creates a window tracking the most recent span sequence
// numbers (rounded up to a multiple of 64, minimum 64).
func NewWindow(span int) Window {
	if span < 64 {
		span = 64
	}
	words := (span + 63) / 64
	return Window{bitmap: make([]uint64, words), span: uint64(words * 64)}
}

// Accept reports whether seq is fresh, and records it if so. Sequence
// number 0 is never valid (senders start at 1), which lets the zero
// window value mean "nothing received".
func (w *Window) Accept(seq uint64) bool {
	if seq == 0 {
		return false
	}
	switch {
	case seq > w.highest:
		// Slide forward, clearing the bits the window skips over.
		delta := seq - w.highest
		if delta >= w.span {
			clear(w.bitmap)
		} else {
			for i := w.highest + 1; i <= seq; i++ {
				w.clearBit(i)
			}
		}
		w.highest = seq
		w.setBit(seq)
		return true
	case w.highest-seq >= w.span:
		return false // too old to track
	default:
		if w.getBit(seq) {
			return false // duplicate
		}
		w.setBit(seq)
		return true
	}
}

// Highest returns the highest accepted sequence number.
func (w *Window) Highest() uint64 { return w.highest }

func (w *Window) setBit(seq uint64) {
	idx := seq % w.span
	w.bitmap[idx/64] |= 1 << (idx % 64)
}

func (w *Window) clearBit(seq uint64) {
	idx := seq % w.span
	w.bitmap[idx/64] &^= 1 << (idx % 64)
}

func (w *Window) getBit(seq uint64) bool {
	idx := seq % w.span
	return w.bitmap[idx/64]&(1<<(idx%64)) != 0
}
