// Package trace synthesizes the flow-arrival trace used to size the MS
// experiment (paper Section V-A3). The authors used a proprietary
// 24-hour HTTP(S) packet trace from a national research network with
// 104M + 74M entries, 1,266,598 unique hosts, and a peak rate of 3,888
// new sessions per second. That trace is not available, so this package
// generates a synthetic equivalent with the same two scalar outputs the
// experiment consumes — unique host count and peak session rate — from
// a realistic model:
//
//   - session arrivals follow a diurnal intensity curve (raised cosine
//     with an afternoon peak and a 4 a.m. trough), sampled per second
//     from a Poisson distribution;
//   - sessions are attributed to hosts by a Zipf popularity law;
//   - session durations are a dragonfly/tortoise mixture in the spirit
//     of Brownlee & Claffy (the paper's own citation for "98% of flows
//     last less than 15 minutes").
//
// Generation is streaming: the full trace is never materialized, only
// a host bitmap and per-second counters, so a day-scale trace analyzes
// in seconds.
package trace

import (
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"slices"
	"time"
)

// Config parameterizes the synthetic trace.
type Config struct {
	// Hosts is the subscriber population of the AS.
	Hosts int
	// Duration of the trace.
	Duration time.Duration
	// PeakRate is the diurnal intensity maximum in new sessions/s.
	PeakRate float64
	// BaseRate is the overnight minimum (defaults to PeakRate/4).
	BaseRate float64
	// ZipfS is the host-popularity skew (must be > 1; default 1.1).
	ZipfS float64
	// Seed makes the trace reproducible.
	Seed int64
	// DurationSampleRate sub-samples session durations for the
	// distribution statistics (default 1%: durations do not affect
	// the scalars, only the reported percentiles).
	DurationSampleRate float64
}

// PaperScale returns the configuration calibrated to reproduce the
// paper's trace scalars: ~1.27M unique hosts and a peak just under 4k
// sessions/s.
func PaperScale() Config {
	return Config{
		Hosts:    1_280_000,
		Duration: 24 * time.Hour,
		PeakRate: 3_800,
		Seed:     1,
	}
}

// Stats are the analysis outputs the MS experiment consumes.
type Stats struct {
	// UniqueHosts is the number of distinct hosts that opened at
	// least one session.
	UniqueHosts int
	// PeakRate is the maximum observed new-sessions-per-second.
	PeakRate int
	// PeakSecond is the trace offset at which the peak occurred.
	PeakSecond int
	// TotalSessions counts all sessions in the trace.
	TotalSessions int64
	// MeanRate is TotalSessions divided by the duration.
	MeanRate float64
	// P50Duration and P98Duration characterize session lifetimes.
	P50Duration, P98Duration time.Duration
}

// ErrBadConfig reports invalid generation parameters.
var ErrBadConfig = errors.New("trace: invalid configuration")

// Generate runs the streaming synthesis and analysis.
func Generate(cfg Config) (*Stats, error) {
	if cfg.Hosts <= 0 || cfg.Duration <= 0 || cfg.PeakRate <= 0 {
		return nil, ErrBadConfig
	}
	if cfg.BaseRate == 0 {
		cfg.BaseRate = cfg.PeakRate / 4
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.ZipfS <= 1 {
		return nil, ErrBadConfig
	}
	if cfg.DurationSampleRate == 0 {
		cfg.DurationSampleRate = 0.01
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Hosts-1))
	seen := newBitset(cfg.Hosts)

	seconds := int(cfg.Duration / time.Second)
	stats := &Stats{}
	var durations []time.Duration

	for s := 0; s < seconds; s++ {
		lambda := intensity(cfg, s, seconds)
		n := poisson(rng, lambda)
		if n > stats.PeakRate {
			stats.PeakRate = n
			stats.PeakSecond = s
		}
		stats.TotalSessions += int64(n)
		for i := 0; i < n; i++ {
			seen.set(int(zipf.Uint64()))
			if rng.Float64() < cfg.DurationSampleRate {
				durations = append(durations, sampleDuration(rng))
			}
		}
	}
	stats.UniqueHosts = seen.count()
	stats.MeanRate = float64(stats.TotalSessions) / cfg.Duration.Seconds()
	stats.P50Duration, stats.P98Duration = percentiles(durations)
	return stats, nil
}

// intensity is the diurnal arrival rate at second s of the trace: a
// raised cosine peaking at 14:00 with its trough at 02:00 (wrapping
// proportionally for durations other than 24h).
func intensity(cfg Config, s, total int) float64 {
	phase := 2 * math.Pi * (float64(s)/float64(total) - 14.0/24.0)
	shape := (1 + math.Cos(phase)) / 2 // 1 at the peak hour, 0 at the trough
	return cfg.BaseRate + (cfg.PeakRate-cfg.BaseRate)*shape
}

// poisson samples a Poisson variate; for large lambda it uses the
// normal approximation, which is indistinguishable at the rates the
// trace uses and keeps generation O(1) per second.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	// Knuth's method for small lambda.
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// sampleDuration draws a session lifetime from the dragonfly/tortoise
// mixture: 95% short-lived exponential sessions (mean 45 s), 5%
// heavy-tailed Pareto "tortoises".
func sampleDuration(rng *rand.Rand) time.Duration {
	if rng.Float64() < 0.95 {
		return time.Duration(rng.ExpFloat64() * 45 * float64(time.Second))
	}
	// Pareto alpha=1.3, xm=60s, capped at 6h.
	x := 60 * math.Pow(rng.Float64(), -1/1.3)
	if x > 6*3600 {
		x = 6 * 3600
	}
	return time.Duration(x * float64(time.Second))
}

func percentiles(d []time.Duration) (p50, p98 time.Duration) {
	if len(d) == 0 {
		return 0, 0
	}
	slices.Sort(d)
	idx := func(p float64) int {
		i := int(p * float64(len(d)))
		if i >= len(d) {
			i = len(d) - 1
		}
		return i
	}
	return d[idx(0.50)], d[idx(0.98)]
}

// bitset tracks host uniqueness compactly.
type bitset struct {
	words []uint64
}

func newBitset(n int) *bitset { return &bitset{words: make([]uint64, (n+63)/64)} }

func (b *bitset) set(i int) { b.words[i/64] |= 1 << (i % 64) }

func (b *bitset) count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}
