package trace

import (
	"errors"
	"testing"
	"time"
)

func smallConfig() Config {
	return Config{
		Hosts:    10_000,
		Duration: time.Hour,
		PeakRate: 500,
		Seed:     7,
	}
}

func TestGenerateSmall(t *testing.T) {
	s, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalSessions == 0 {
		t.Fatal("no sessions generated")
	}
	if s.UniqueHosts == 0 || s.UniqueHosts > 10_000 {
		t.Errorf("unique hosts = %d", s.UniqueHosts)
	}
	// The peak must be at least the base-rate floor and near the
	// configured peak (within Poisson noise).
	if s.PeakRate < 125 {
		t.Errorf("peak rate %d below base rate", s.PeakRate)
	}
	if float64(s.PeakRate) > 500*1.3 {
		t.Errorf("peak rate %d wildly above configured peak", s.PeakRate)
	}
	if s.MeanRate <= 0 || s.MeanRate > float64(s.PeakRate) {
		t.Errorf("mean rate %.1f vs peak %d", s.MeanRate, s.PeakRate)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSessions != b.TotalSessions || a.UniqueHosts != b.UniqueHosts || a.PeakRate != b.PeakRate {
		t.Errorf("same seed, different stats: %+v vs %+v", a, b)
	}
	cfg := smallConfig()
	cfg.Seed = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSessions == c.TotalSessions {
		t.Error("different seeds produced identical session counts")
	}
}

func TestDurationDistributionMatchesPaperClaim(t *testing.T) {
	// Section VIII-G1: "98% of the flows in the Internet last less
	// than 15 minutes" — the synthetic mixture must respect that.
	cfg := smallConfig()
	cfg.DurationSampleRate = 1.0
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.P98Duration >= 15*time.Minute {
		t.Errorf("P98 duration %v >= 15m", s.P98Duration)
	}
	if s.P50Duration <= 0 || s.P50Duration >= s.P98Duration {
		t.Errorf("P50 %v vs P98 %v", s.P50Duration, s.P98Duration)
	}
}

func TestDiurnalShape(t *testing.T) {
	cfg := smallConfig()
	cfg.BaseRate = cfg.PeakRate / 4 // Generate's default, applied manually here
	total := 86_400
	peakIntensity := intensity(cfg, 14*3600, total)
	troughIntensity := intensity(cfg, 2*3600, total)
	if peakIntensity <= troughIntensity {
		t.Errorf("peak %f <= trough %f", peakIntensity, troughIntensity)
	}
	if peakIntensity > cfg.PeakRate+1e-9 {
		t.Errorf("intensity %f exceeds configured peak", peakIntensity)
	}
	if troughIntensity < cfg.PeakRate/4-1e-9 {
		t.Errorf("trough %f below base rate", troughIntensity)
	}
}

func TestPoissonMoments(t *testing.T) {
	s, _ := Generate(Config{Hosts: 100, Duration: time.Minute, PeakRate: 10, Seed: 3})
	if s.TotalSessions == 0 {
		t.Error("tiny trace empty")
	}
	// Small-lambda path (Knuth) coverage: lambda below 30 throughout.
}

func TestGenerateBadConfig(t *testing.T) {
	bad := []Config{
		{},
		{Hosts: -1, Duration: time.Hour, PeakRate: 1},
		{Hosts: 1, Duration: 0, PeakRate: 1},
		{Hosts: 1, Duration: time.Hour, PeakRate: 0},
		{Hosts: 1, Duration: time.Hour, PeakRate: 1, ZipfS: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d: err = %v", i, err)
		}
	}
}

func TestPaperScaleConfigSane(t *testing.T) {
	cfg := PaperScale()
	if cfg.Hosts < 1_200_000 || cfg.PeakRate < 3_000 {
		t.Errorf("paper-scale config off: %+v", cfg)
	}
	if cfg.Duration != 24*time.Hour {
		t.Errorf("duration %v", cfg.Duration)
	}
}
