package wire

import (
	"bytes"
	"testing"

	"apna/internal/ephid"
)

// TestHeaderAppendToMatchesSerializeTo pins the append encoder to the
// existing one bit for bit.
func TestHeaderAppendToMatchesSerializeTo(t *testing.T) {
	h := sampleHeader()
	want := make([]byte, HeaderSize)
	if err := h.SerializeTo(want); err != nil {
		t.Fatal(err)
	}
	got := h.AppendTo(nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendTo != SerializeTo\n%x\n%x", got, want)
	}

	// Appending after a prefix must leave the prefix intact.
	withPrefix := h.AppendTo([]byte{1, 2, 3})
	if !bytes.Equal(withPrefix[:3], []byte{1, 2, 3}) || !bytes.Equal(withPrefix[3:], want) {
		t.Fatal("AppendTo corrupted the prefix")
	}
}

func TestPacketAppendToMatchesEncode(t *testing.T) {
	p := Packet{Header: sampleHeader(), Payload: []byte("hello")}
	want, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Packet.AppendTo != Encode")
	}
	if _, err := DecodePacket(got); err != nil {
		t.Fatal(err)
	}
}

func TestPacketAppendToRejectsOversize(t *testing.T) {
	p := Packet{Payload: make([]byte, MaxPayload+1)}
	prefix := []byte{9}
	out, err := p.AppendTo(prefix)
	if err == nil {
		t.Fatal("expected ErrTooLarge")
	}
	if len(out) != 1 || out[0] != 9 {
		t.Fatal("failed AppendTo must return dst unchanged")
	}
}

func TestAppendEncapsulateMatchesEncapsulate(t *testing.T) {
	frame := Packet{Header: sampleHeader(), Payload: []byte("hi")}
	raw, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Encapsulate(0x0a000001, 0x0a000002, raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AppendEncapsulate(nil, 0x0a000001, 0x0a000002, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("AppendEncapsulate != Encapsulate")
	}
	_, inner, err := Decapsulate(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inner, raw) {
		t.Fatal("decapsulated frame mismatch")
	}
}

func TestAppendEncapsulateRejectsOversize(t *testing.T) {
	frame := make([]byte, 0x10000)
	out, err := AppendEncapsulate([]byte{7}, 1, 2, frame)
	if err == nil {
		t.Fatal("expected ErrTooLarge")
	}
	if len(out) != 1 || out[0] != 7 {
		t.Fatal("failed AppendEncapsulate must return dst unchanged")
	}
}

// Allocation regression: the append encoders must not allocate when
// the destination has capacity (satellite of the zero-allocation data
// plane refactor).

func TestHeaderAppendToZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	h := sampleHeader()
	buf := make([]byte, 0, HeaderSize)
	allocs := testing.AllocsPerRun(100, func() {
		buf = h.AppendTo(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("Header.AppendTo allocates %.1f times per op", allocs)
	}
}

func TestPacketAppendToZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	p := Packet{Header: sampleHeader(), Payload: bytes.Repeat([]byte("x"), 192)}
	buf := make([]byte, 0, HeaderSize+192)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = p.AppendTo(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Packet.AppendTo allocates %.1f times per op", allocs)
	}
}

func TestAppendEncapsulateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unreliable under the race detector")
	}
	p := Packet{Header: sampleHeader(), Payload: []byte("payload")}
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, IPv4HeaderSize+GREHeaderSize+len(raw))
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendEncapsulate(buf[:0], 1, 2, raw)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendEncapsulate allocates %.1f times per op", allocs)
	}
}

// Guard the EphID size assumption the frame accessors rely on.
func TestFrameAccessorOffsets(t *testing.T) {
	h := sampleHeader()
	frame := h.AppendTo(nil)
	if FrameSrcAID(frame) != 100 || FrameDstAID(frame) != 200 {
		t.Fatal("AID accessors disagree with AppendTo layout")
	}
	if FrameSrcEphID(frame) != h.SrcEphID || FrameDstEphID(frame) != h.DstEphID {
		t.Fatal("EphID accessors disagree with AppendTo layout")
	}
	if ephid.Size != 16 {
		t.Fatalf("EphID size changed: %d", ephid.Size)
	}
}
