package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// IPv4 + GRE encapsulation for deploying APNA in today's Internet
// (Section VII-D, Figure 9): an APNA frame travels inside a GRE tunnel
// between two APNA entities, whose IPv4 addresses appear in the outer
// header. Host IPv4 addresses double as HIDs and APNA-router addresses
// double as AIDs.

// Sizes of the encapsulation headers.
const (
	IPv4HeaderSize = 20 // no options
	GREHeaderSize  = 4

	// EtherTypeAPNA identifies APNA inside GRE. The paper notes a
	// dedicated EtherType would be requested from IANA; we use a value
	// from the experimental range.
	EtherTypeAPNA = 0x88B5

	// IPProtoGRE is the IPv4 protocol number for GRE (RFC 2784).
	IPProtoGRE = 47

	ipv4Version = 4
	ipv4IHL     = 5 // 20 bytes, no options
)

// Encapsulation errors.
var (
	ErrNotIPv4     = errors.New("wire: not an IPv4 packet")
	ErrNotGRE      = errors.New("wire: not a GRE packet")
	ErrNotAPNAGRE  = errors.New("wire: GRE payload is not APNA")
	ErrIPTruncated = errors.New("wire: truncated IPv4 packet")
)

// IPv4Header is the 20-byte outer header used for tunneling (and by the
// gateway when translating legacy traffic).
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	SrcIP    uint32
	DstIP    uint32
}

// DecodeFromBytes parses an IPv4 header (without options support; IHL
// must be 5, which is all the tunnel path ever produces).
func (h *IPv4Header) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrIPTruncated, len(data))
	}
	if data[0]>>4 != ipv4Version {
		return fmt.Errorf("%w: version %d", ErrNotIPv4, data[0]>>4)
	}
	if data[0]&0x0f != ipv4IHL {
		return fmt.Errorf("%w: IHL %d unsupported", ErrNotIPv4, data[0]&0x0f)
	}
	h.TOS = data[1]
	h.TotalLen = binary.BigEndian.Uint16(data[2:])
	h.ID = binary.BigEndian.Uint16(data[4:])
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:])
	h.SrcIP = binary.BigEndian.Uint32(data[12:])
	h.DstIP = binary.BigEndian.Uint32(data[16:])
	return nil
}

// SerializeTo writes the header into buf, computing the checksum.
func (h *IPv4Header) SerializeTo(buf []byte) error {
	if len(buf) < IPv4HeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrIPTruncated, len(buf))
	}
	buf[0] = ipv4Version<<4 | ipv4IHL
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:], h.TotalLen)
	binary.BigEndian.PutUint16(buf[4:], h.ID)
	binary.BigEndian.PutUint16(buf[6:], 0) // flags/fragment: never fragmented
	buf[8] = h.TTL
	buf[9] = h.Protocol
	binary.BigEndian.PutUint16(buf[10:], 0) // checksum placeholder
	binary.BigEndian.PutUint32(buf[12:], h.SrcIP)
	binary.BigEndian.PutUint32(buf[16:], h.DstIP)
	h.Checksum = ipv4Checksum(buf[:IPv4HeaderSize])
	binary.BigEndian.PutUint16(buf[10:], h.Checksum)
	return nil
}

// ipv4Checksum is the RFC 1071 ones-complement sum over the header.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ChecksumValid reports whether the header bytes carry a correct
// checksum.
func ChecksumValid(hdr []byte) bool {
	if len(hdr) < IPv4HeaderSize {
		return false
	}
	var sum uint32
	for i := 0; i+1 < IPv4HeaderSize; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum) == 0xffff
}

// AppendEncapsulate appends the IPv4+GRE encapsulation of an APNA frame
// to dst and returns the extended slice (Figure 9). With enough spare
// capacity in dst the call does not allocate, so gateways can
// encapsulate into pooled buffers.
func AppendEncapsulate(dst []byte, srcIP, dstIP uint32, apnaFrame []byte) ([]byte, error) {
	total := IPv4HeaderSize + GREHeaderSize + len(apnaFrame)
	if total > 0xffff {
		return dst, fmt.Errorf("%w: %d bytes", ErrTooLarge, total)
	}
	n := len(dst)
	dst = append(dst, make([]byte, IPv4HeaderSize+GREHeaderSize)...)
	buf := dst[n:]
	ip := IPv4Header{
		TotalLen: uint16(total),
		TTL:      DefaultHopLimit,
		Protocol: IPProtoGRE,
		SrcIP:    srcIP,
		DstIP:    dstIP,
	}
	if err := ip.SerializeTo(buf); err != nil {
		return dst[:n], err
	}
	// GRE (RFC 2784): no checksum, version 0, protocol type APNA.
	binary.BigEndian.PutUint16(buf[IPv4HeaderSize:], 0)
	binary.BigEndian.PutUint16(buf[IPv4HeaderSize+2:], EtherTypeAPNA)
	return append(dst, apnaFrame...), nil
}

// Encapsulate wraps an APNA frame in IPv4+GRE between two tunnel
// endpoints (Figure 9). It is the allocating convenience wrapper over
// AppendEncapsulate.
func Encapsulate(srcIP, dstIP uint32, apnaFrame []byte) ([]byte, error) {
	return AppendEncapsulate(
		make([]byte, 0, IPv4HeaderSize+GREHeaderSize+len(apnaFrame)),
		srcIP, dstIP, apnaFrame)
}

// Decapsulate unwraps an IPv4+GRE tunnel packet, returning the outer
// header and the inner APNA frame (aliasing data).
func Decapsulate(data []byte) (*IPv4Header, []byte, error) {
	var ip IPv4Header
	if err := ip.DecodeFromBytes(data); err != nil {
		return nil, nil, err
	}
	if ip.Protocol != IPProtoGRE {
		return nil, nil, fmt.Errorf("%w: protocol %d", ErrNotGRE, ip.Protocol)
	}
	if int(ip.TotalLen) != len(data) {
		return nil, nil, fmt.Errorf("%w: total length %d vs %d", ErrIPTruncated, ip.TotalLen, len(data))
	}
	if len(data) < IPv4HeaderSize+GREHeaderSize {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrIPTruncated, len(data))
	}
	gre := data[IPv4HeaderSize:]
	if binary.BigEndian.Uint16(gre) != 0 {
		return nil, nil, fmt.Errorf("%w: flags %#x", ErrNotGRE, binary.BigEndian.Uint16(gre))
	}
	if binary.BigEndian.Uint16(gre[2:]) != EtherTypeAPNA {
		return nil, nil, fmt.Errorf("%w: ethertype %#x", ErrNotAPNAGRE, binary.BigEndian.Uint16(gre[2:]))
	}
	return &ip, data[IPv4HeaderSize+GREHeaderSize:], nil
}
