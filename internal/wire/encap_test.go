package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestIPv4HeaderRoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS: 0x10, TotalLen: 1500, ID: 42, TTL: 63,
		Protocol: IPProtoGRE, SrcIP: 0x0A000001, DstIP: 0xC0A80101,
	}
	buf := make([]byte, IPv4HeaderSize)
	if err := h.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	if !ChecksumValid(buf) {
		t.Error("serialized header checksum invalid")
	}
	var got IPv4Header
	if err := got.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	var h IPv4Header
	if err := h.DecodeFromBytes(make([]byte, 19)); !errors.Is(err, ErrIPTruncated) {
		t.Errorf("short: %v", err)
	}
	buf := make([]byte, IPv4HeaderSize)
	buf[0] = 6 << 4
	if err := h.DecodeFromBytes(buf); !errors.Is(err, ErrNotIPv4) {
		t.Errorf("v6: %v", err)
	}
	buf[0] = 4<<4 | 6 // options present
	if err := h.DecodeFromBytes(buf); !errors.Is(err, ErrNotIPv4) {
		t.Errorf("options: %v", err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	h := IPv4Header{TotalLen: 100, TTL: 64, Protocol: IPProtoGRE, SrcIP: 1, DstIP: 2}
	buf := make([]byte, IPv4HeaderSize)
	if err := h.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] ^= 0x40
		if ChecksumValid(buf) {
			t.Fatalf("corruption at byte %d not detected", i)
		}
		buf[i] ^= 0x40
	}
	if ChecksumValid(buf[:10]) {
		t.Error("short buffer accepted")
	}
}

func TestEncapsulateDecapsulate(t *testing.T) {
	p := Packet{Header: sampleHeader(), Payload: []byte("tunnel me")}
	frame, _ := p.Encode()
	tun, err := Encapsulate(0x0A000001, 0x0A000002, frame)
	if err != nil {
		t.Fatal(err)
	}
	ip, inner, err := Decapsulate(tun)
	if err != nil {
		t.Fatal(err)
	}
	if ip.SrcIP != 0x0A000001 || ip.DstIP != 0x0A000002 {
		t.Errorf("outer addresses %x -> %x", ip.SrcIP, ip.DstIP)
	}
	if !bytes.Equal(inner, frame) {
		t.Error("inner frame mismatch")
	}
	if _, err := DecodePacket(inner); err != nil {
		t.Errorf("inner frame does not decode: %v", err)
	}
}

func TestDecapsulateErrors(t *testing.T) {
	p := Packet{Header: sampleHeader()}
	frame, _ := p.Encode()
	tun, _ := Encapsulate(1, 2, frame)

	// Wrong IP protocol.
	bad := append([]byte(nil), tun...)
	bad[9] = 6 // TCP
	var ip IPv4Header
	_ = ip // recompute checksum so only the protocol check fires
	h := IPv4Header{TotalLen: uint16(len(bad)), TTL: DefaultHopLimit, Protocol: 6, SrcIP: 1, DstIP: 2}
	_ = h.SerializeTo(bad)
	if _, _, err := Decapsulate(bad); !errors.Is(err, ErrNotGRE) {
		t.Errorf("wrong proto: %v", err)
	}

	// Wrong GRE ethertype.
	bad2 := append([]byte(nil), tun...)
	bad2[IPv4HeaderSize+2] = 0
	bad2[IPv4HeaderSize+3] = 0
	if _, _, err := Decapsulate(bad2); !errors.Is(err, ErrNotAPNAGRE) {
		t.Errorf("wrong ethertype: %v", err)
	}

	// GRE flags set.
	bad3 := append([]byte(nil), tun...)
	bad3[IPv4HeaderSize] = 0x80
	if _, _, err := Decapsulate(bad3); !errors.Is(err, ErrNotGRE) {
		t.Errorf("flags: %v", err)
	}

	// Truncated.
	if _, _, err := Decapsulate(tun[:len(tun)-1]); err == nil {
		t.Error("truncated tunnel packet accepted")
	}
}

func TestEncapsulateRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := Packet{Header: sampleHeader(), Payload: payload}
		frame, err := p.Encode()
		if err != nil {
			return false
		}
		tun, err := Encapsulate(src, dst, frame)
		if err != nil {
			return false
		}
		ip, inner, err := Decapsulate(tun)
		return err == nil && ip.SrcIP == src && ip.DstIP == dst && bytes.Equal(inner, frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncapsulateTooLarge(t *testing.T) {
	if _, err := Encapsulate(1, 2, make([]byte, 0x10000)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v", err)
	}
}
