package wire

import (
	"fmt"

	"apna/internal/ephid"
)

// Endpoint is one side of an APNA flow: the AID:EphID tuple that fully
// addresses a host (Section III-B). It is comparable so it can key maps,
// following the gopacket Flow/Endpoint idiom.
type Endpoint struct {
	AID   ephid.AID
	EphID ephid.EphID
}

// String renders the endpoint as AID:EphID.
func (e Endpoint) String() string { return fmt.Sprintf("%v:%v", e.AID, e.EphID) }

// FastHash returns a quick non-cryptographic hash of the endpoint
// (FNV-1a), usable for load balancing across workers.
func (e Endpoint) FastHash() uint64 {
	h := fnvOffset
	h = fnvMix(h, uint64(e.AID))
	for i := 0; i < ephid.Size; i += 8 {
		var v uint64
		for j := 0; j < 8; j++ {
			v = v<<8 | uint64(e.EphID[i+j])
		}
		h = fnvMix(h, v)
	}
	return finalize(h)
}

// Flow identifies a unidirectional packet flow by its two endpoints.
type Flow struct {
	Src, Dst Endpoint
}

// FlowFromHeader extracts the flow of a decoded header.
func FlowFromHeader(h *Header) Flow {
	return Flow{
		Src: Endpoint{AID: h.SrcAID, EphID: h.SrcEphID},
		Dst: Endpoint{AID: h.DstAID, EphID: h.DstEphID},
	}
}

// Reverse returns the flow in the opposite direction, used to route
// replies.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// String renders the flow as src->dst.
func (f Flow) String() string { return f.Src.String() + "->" + f.Dst.String() }

// FastHash returns a symmetric hash: a flow and its reverse hash
// identically, so bidirectional traffic lands on the same worker
// (the gopacket Flow.FastHash contract).
func (f Flow) FastHash() uint64 {
	a, b := f.Src.FastHash(), f.Dst.FastHash()
	if a > b {
		a, b = b, a
	}
	return finalize(fnvMix(fnvMix(fnvOffset, a), b))
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// finalize avalanches the hash (splitmix64 finalizer) so that the low
// bits — which callers use for bucket selection — depend on every input
// bit. Raw FNV-1a has weak low bits.
func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
