package wire

import (
	"bytes"
	"testing"

	"apna/internal/ephid"
)

// FuzzParseHeader drives the header codec with arbitrary bytes: no
// input may panic, ValidFrame and DecodeFromBytes must agree, and any
// decodable header must survive a serialize/decode round trip bit
// exact. The border router calls these on every frame an adversary can
// craft, so the codec's total robustness is a security property, not
// just hygiene.
func FuzzParseHeader(f *testing.F) {
	// Seed corpus: a genuine frame with payload, its header, and the
	// interesting truncation/corruption boundaries.
	valid := Packet{
		Header: Header{
			NextProto: ProtoSession, Flags: FlagZeroRTT, HopLimit: 17,
			Nonce:  0xDEADBEEFCAFE,
			SrcAID: 100, DstAID: 200,
			SrcEphID: ephid.EphID{1, 2, 3}, DstEphID: ephid.EphID{4, 5, 6},
			MAC: [MACSize]byte{7, 8, 9},
		},
		Payload: []byte("seed payload"),
	}
	frame, err := valid.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add(frame[:HeaderSize])                     // bare header, zero payload declared
	f.Add(frame[:HeaderSize-1])                   // one byte short of a header
	f.Add(frame[:1])                              // version only
	f.Add([]byte{})                               // empty
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize)) // wrong version
	badLen := append([]byte(nil), frame...)
	badLen[offPayloadLen] ^= 0x40 // length field lies about the payload
	f.Add(badLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		err := h.DecodeFromBytes(data)
		if err != nil {
			if ValidFrame(data) {
				t.Fatalf("ValidFrame accepted undecodable input: %x", data)
			}
			return
		}
		// Round trip: serialize the decoded header and decode it again.
		buf := make([]byte, HeaderSize)
		if err := h.SerializeTo(buf); err != nil {
			t.Fatalf("decoded header failed to serialize: %v", err)
		}
		var h2 Header
		if err := h2.DecodeFromBytes(buf); err != nil {
			t.Fatalf("round-tripped header failed to decode: %v", err)
		}
		if h2 != h {
			t.Fatalf("round trip changed header: %+v vs %+v", h, h2)
		}

		// Full-packet decoding must agree with the raw-frame validator
		// and never return a payload that contradicts the header.
		pkt, err := DecodePacket(data)
		if err == nil {
			if !ValidFrame(data) {
				t.Fatal("DecodePacket accepted a frame ValidFrame rejects")
			}
			if int(pkt.Header.PayloadLen) != len(pkt.Payload) {
				t.Fatalf("payload length %d vs declared %d", len(pkt.Payload), pkt.Header.PayloadLen)
			}
		} else if ValidFrame(data) {
			t.Fatal("ValidFrame accepted a frame DecodePacket rejects")
		}

		// Raw accessors must match the decoded struct on any decodable
		// frame (the fast path and slow path can never disagree).
		if FrameSrcAID(data) != h.SrcAID || FrameDstAID(data) != h.DstAID ||
			FrameSrcEphID(data) != h.SrcEphID || FrameDstEphID(data) != h.DstEphID ||
			FrameFlags(data) != h.Flags || FrameHopLimit(data) != h.HopLimit {
			t.Fatal("raw accessors disagree with decoded header")
		}
	})
}
