// Package wire implements the APNA packet formats: the network header of
// Figure 7, per-packet MACs, flow identifiers, and the IPv4+GRE
// encapsulation of the incremental-deployment path (Figure 9).
//
// The codec follows the gopacket decoding-layer idiom: DecodeFromBytes
// parses into a caller-owned struct without allocating, and SerializeTo
// writes into a caller-provided buffer, so the border-router fast path
// is allocation free.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"apna/internal/ephid"
)

// Header layout. The 48 bytes enumerated in Figure 7 (source/destination
// AIDs and EphIDs plus the 8-byte MAC) are kept bit-compatible; the
// additional 16 bytes carry the protocol demultiplexer shown in Figure 9
// ("Protocol = UL"), flags, a hop limit, the payload length, and the
// replay nonce proposed in Section VIII-D. The full header is one cache
// line.
const (
	offVersion    = 0
	offNextProto  = 1
	offFlags      = 2
	offHopLimit   = 3
	offPayloadLen = 4
	offReserved   = 6
	offNonce      = 8
	offSrcAID     = 16
	offDstAID     = 20
	offSrcEphID   = 24
	offDstEphID   = 40
	offMAC        = 56

	// HeaderSize is the total APNA header length in bytes.
	HeaderSize = 64
	// MACSize is the per-packet MAC length (Figure 7).
	MACSize = 8
	// MaxPayload is the largest payload a header can describe.
	MaxPayload = 1<<16 - 1

	// Version is the only header version this codec understands.
	Version = 1

	// DefaultHopLimit is the initial hop limit on new packets.
	DefaultHopLimit = 64
)

// NextProto values demultiplex the payload, taking the role of the
// "Protocol = UL" field in the paper's GRE encapsulation figure.
type NextProto uint8

const (
	// ProtoSession carries encrypted session data (Section IV-D2).
	ProtoSession NextProto = iota
	// ProtoControl carries host<->AS control messages such as EphID
	// requests and replies (Section IV-C).
	ProtoControl
	// ProtoHandshake carries connection-establishment messages
	// (Section IV-D1 and the client-server variant of Section VII-A).
	ProtoHandshake
	// ProtoICMP carries ICMP messages (Section VIII-B).
	ProtoICMP
	// ProtoShutoff carries shutoff requests to accountability agents
	// (Section IV-E).
	ProtoShutoff
	// ProtoAcct carries the inter-domain accountability plane:
	// host-to-AA complaints, AA-to-AA shutoff requests and receipts,
	// and revocation-digest dissemination (Section IV-E applied across
	// AS borders).
	ProtoAcct
)

// String names the protocol number.
func (p NextProto) String() string {
	switch p {
	case ProtoSession:
		return "session"
	case ProtoControl:
		return "control"
	case ProtoHandshake:
		return "handshake"
	case ProtoICMP:
		return "icmp"
	case ProtoShutoff:
		return "shutoff"
	case ProtoAcct:
		return "acct"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Header flag bits.
const (
	// FlagControl marks packets addressed to AS-internal services;
	// border routers never let them leave the AS.
	FlagControl = 1 << 0
	// FlagZeroRTT marks a handshake packet that already carries
	// encrypted application data (the 0-RTT establishment option of
	// Section VII-C).
	FlagZeroRTT = 1 << 1
)

// Codec errors.
var (
	ErrTruncated  = errors.New("wire: buffer shorter than header")
	ErrBadVersion = errors.New("wire: unsupported header version")
	ErrBadLength  = errors.New("wire: payload length mismatch")
	ErrTooLarge   = errors.New("wire: payload exceeds maximum")
)

// Header is the decoded APNA network header. Communication end points
// are AID:EphID tuples (Section III-B).
type Header struct {
	NextProto  NextProto
	Flags      uint8
	HopLimit   uint8
	PayloadLen uint16
	// Nonce makes every packet from a sender unique, enabling replay
	// detection at the destination (Section VIII-D).
	Nonce    uint64
	SrcAID   ephid.AID
	DstAID   ephid.AID
	SrcEphID ephid.EphID
	DstEphID ephid.EphID
	// MAC is computed with the key the source host shares with its AS
	// (kHA); it is what links every packet to its sender.
	MAC [MACSize]byte
}

// DecodeFromBytes parses a header from the first HeaderSize bytes of
// data without retaining or allocating memory.
func (h *Header) DecodeFromBytes(data []byte) error {
	if len(data) < HeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if data[offVersion] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, data[offVersion])
	}
	h.NextProto = NextProto(data[offNextProto])
	h.Flags = data[offFlags]
	h.HopLimit = data[offHopLimit]
	h.PayloadLen = binary.BigEndian.Uint16(data[offPayloadLen:])
	h.Nonce = binary.BigEndian.Uint64(data[offNonce:])
	h.SrcAID = ephid.AID(binary.BigEndian.Uint32(data[offSrcAID:]))
	h.DstAID = ephid.AID(binary.BigEndian.Uint32(data[offDstAID:]))
	copy(h.SrcEphID[:], data[offSrcEphID:offSrcEphID+ephid.Size])
	copy(h.DstEphID[:], data[offDstEphID:offDstEphID+ephid.Size])
	copy(h.MAC[:], data[offMAC:offMAC+MACSize])
	return nil
}

// SerializeTo writes the header into the first HeaderSize bytes of buf.
func (h *Header) SerializeTo(buf []byte) error {
	if len(buf) < HeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(buf))
	}
	buf[offVersion] = Version
	buf[offNextProto] = byte(h.NextProto)
	buf[offFlags] = h.Flags
	buf[offHopLimit] = h.HopLimit
	binary.BigEndian.PutUint16(buf[offPayloadLen:], h.PayloadLen)
	binary.BigEndian.PutUint16(buf[offReserved:], 0)
	binary.BigEndian.PutUint64(buf[offNonce:], h.Nonce)
	binary.BigEndian.PutUint32(buf[offSrcAID:], uint32(h.SrcAID))
	binary.BigEndian.PutUint32(buf[offDstAID:], uint32(h.DstAID))
	copy(buf[offSrcEphID:], h.SrcEphID[:])
	copy(buf[offDstEphID:], h.DstEphID[:])
	copy(buf[offMAC:], h.MAC[:])
	return nil
}

// AppendTo appends the serialized header to dst and returns the
// extended slice. When dst has HeaderSize bytes of spare capacity the
// call performs no allocation, which is what lets pipelines encode into
// pooled frame buffers.
func (h *Header) AppendTo(dst []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	_ = h.SerializeTo(dst[n:]) // cannot fail: the slice has HeaderSize bytes
	return dst
}

// Packet couples a header with its payload bytes.
type Packet struct {
	Header  Header
	Payload []byte
}

// AppendTo appends the serialized packet (header plus payload) to dst,
// fixing up PayloadLen, and returns the extended slice. With enough
// spare capacity in dst the call does not allocate — the zero-copy
// encoder of the forwarding fast path.
func (p *Packet) AppendTo(dst []byte) ([]byte, error) {
	if len(p.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(p.Payload))
	}
	p.Header.PayloadLen = uint16(len(p.Payload))
	dst = p.Header.AppendTo(dst)
	return append(dst, p.Payload...), nil
}

// Encode serializes the packet into a fresh buffer, fixing up
// PayloadLen. It is the allocating convenience wrapper over AppendTo.
func (p *Packet) Encode() ([]byte, error) {
	buf, err := p.AppendTo(make([]byte, 0, HeaderSize+len(p.Payload)))
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodePacket parses a full frame. The returned packet's Payload
// aliases data (gopacket NoCopy-style); the caller must not mutate data
// while the packet is live.
func DecodePacket(data []byte) (*Packet, error) {
	var p Packet
	if err := p.Header.DecodeFromBytes(data); err != nil {
		return nil, err
	}
	if int(p.Header.PayloadLen) != len(data)-HeaderSize {
		return nil, fmt.Errorf("%w: header says %d, frame carries %d",
			ErrBadLength, p.Header.PayloadLen, len(data)-HeaderSize)
	}
	p.Payload = data[HeaderSize:]
	return &p, nil
}

// Raw frame accessors used on the border-router fast path, which
// operates on frames without decoding them into a Header struct.

// FrameSrcAID reads the source AID directly from a raw frame.
func FrameSrcAID(frame []byte) ephid.AID {
	return ephid.AID(binary.BigEndian.Uint32(frame[offSrcAID:]))
}

// FrameDstAID reads the destination AID directly from a raw frame.
func FrameDstAID(frame []byte) ephid.AID {
	return ephid.AID(binary.BigEndian.Uint32(frame[offDstAID:]))
}

// FrameSrcEphID reads the source EphID directly from a raw frame.
func FrameSrcEphID(frame []byte) ephid.EphID {
	return ephid.EphID(frame[offSrcEphID : offSrcEphID+ephid.Size])
}

// FrameDstEphID reads the destination EphID directly from a raw frame.
func FrameDstEphID(frame []byte) ephid.EphID {
	return ephid.EphID(frame[offDstEphID : offDstEphID+ephid.Size])
}

// FrameFlags reads the flag byte directly from a raw frame.
func FrameFlags(frame []byte) uint8 { return frame[offFlags] }

// FrameHopLimit reads the hop limit from a raw frame.
func FrameHopLimit(frame []byte) uint8 { return frame[offHopLimit] }

// FrameDecrementHopLimit decrements the hop limit in place and reports
// whether the packet may still be forwarded. The hop limit is excluded
// from the packet MAC precisely so transit ASes can decrement it.
func FrameDecrementHopLimit(frame []byte) bool {
	if frame[offHopLimit] == 0 {
		return false
	}
	frame[offHopLimit]--
	return frame[offHopLimit] > 0
}

// ValidFrame reports whether data is long enough and version-correct to
// be treated as an APNA frame.
func ValidFrame(data []byte) bool {
	return len(data) >= HeaderSize && data[offVersion] == Version &&
		int(binary.BigEndian.Uint16(data[offPayloadLen:])) == len(data)-HeaderSize
}
