package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"apna/internal/ephid"
)

func sampleHeader() Header {
	h := Header{
		NextProto: ProtoSession,
		Flags:     FlagZeroRTT,
		HopLimit:  DefaultHopLimit,
		Nonce:     0xDEADBEEF01020304,
		SrcAID:    100,
		DstAID:    200,
	}
	for i := range h.SrcEphID {
		h.SrcEphID[i] = byte(i)
		h.DstEphID[i] = byte(0xF0 + i)
	}
	for i := range h.MAC {
		h.MAC[i] = byte(0xA0 + i)
	}
	return h
}

func TestHeaderRoundTrip(t *testing.T) {
	h := sampleHeader()
	h.PayloadLen = 1234
	buf := make([]byte, HeaderSize)
	if err := h.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var got Header
	if err := got.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(proto, flags, hop uint8, plen uint16, nonce uint64,
		sa, da uint32, se, de [16]byte, mac [8]byte) bool {
		h := Header{
			NextProto: NextProto(proto), Flags: flags, HopLimit: hop,
			PayloadLen: plen, Nonce: nonce,
			SrcAID: ephid.AID(sa), DstAID: ephid.AID(da),
			SrcEphID: ephid.EphID(se), DstEphID: ephid.EphID(de),
			MAC: mac,
		}
		buf := make([]byte, HeaderSize)
		if err := h.SerializeTo(buf); err != nil {
			return false
		}
		var got Header
		if err := got.DecodeFromBytes(buf); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderDecodeErrors(t *testing.T) {
	var h Header
	if err := h.DecodeFromBytes(make([]byte, HeaderSize-1)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	buf := make([]byte, HeaderSize)
	buf[0] = 7
	if err := h.DecodeFromBytes(buf); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version: %v", err)
	}
	if err := h.SerializeTo(make([]byte, HeaderSize-1)); !errors.Is(err, ErrTruncated) {
		t.Errorf("serialize short: %v", err)
	}
}

func TestPacketEncodeDecode(t *testing.T) {
	p := Packet{Header: sampleHeader(), Payload: []byte("hello apna")}
	frame, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != HeaderSize+len(p.Payload) {
		t.Fatalf("frame size %d", len(frame))
	}
	if !ValidFrame(frame) {
		t.Error("ValidFrame rejected encoded frame")
	}
	got, err := DecodePacket(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload %q", got.Payload)
	}
	if got.Header.PayloadLen != uint16(len(p.Payload)) {
		t.Errorf("payload len %d", got.Header.PayloadLen)
	}
}

func TestDecodePacketLengthMismatch(t *testing.T) {
	p := Packet{Header: sampleHeader(), Payload: []byte("xyz")}
	frame, _ := p.Encode()
	if _, err := DecodePacket(frame[:len(frame)-1]); !errors.Is(err, ErrBadLength) {
		t.Errorf("truncated payload: %v", err)
	}
	if ValidFrame(frame[:len(frame)-1]) {
		t.Error("ValidFrame accepted truncated frame")
	}
}

func TestPacketEncodeTooLarge(t *testing.T) {
	p := Packet{Payload: make([]byte, MaxPayload+1)}
	if _, err := p.Encode(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestFrameAccessors(t *testing.T) {
	p := Packet{Header: sampleHeader(), Payload: nil}
	frame, _ := p.Encode()
	if FrameSrcAID(frame) != p.Header.SrcAID {
		t.Error("FrameSrcAID")
	}
	if FrameDstAID(frame) != p.Header.DstAID {
		t.Error("FrameDstAID")
	}
	if FrameSrcEphID(frame) != p.Header.SrcEphID {
		t.Error("FrameSrcEphID")
	}
	if FrameDstEphID(frame) != p.Header.DstEphID {
		t.Error("FrameDstEphID")
	}
	if FrameFlags(frame) != p.Header.Flags {
		t.Error("FrameFlags")
	}
	if FrameHopLimit(frame) != DefaultHopLimit {
		t.Error("FrameHopLimit")
	}
}

func TestFrameDecrementHopLimit(t *testing.T) {
	p := Packet{Header: sampleHeader()}
	p.Header.HopLimit = 2
	frame, _ := p.Encode()
	if !FrameDecrementHopLimit(frame) {
		t.Error("hop 2->1 should forward")
	}
	if FrameDecrementHopLimit(frame) {
		t.Error("hop 1->0 should not forward")
	}
	if FrameDecrementHopLimit(frame) {
		t.Error("hop 0 should not forward")
	}
}

func TestNextProtoString(t *testing.T) {
	names := map[NextProto]string{
		ProtoSession: "session", ProtoControl: "control",
		ProtoHandshake: "handshake", ProtoICMP: "icmp",
		ProtoShutoff: "shutoff", NextProto(200): "proto(200)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p, want)
		}
	}
}

func TestEndpointAndFlow(t *testing.T) {
	h := sampleHeader()
	f := FlowFromHeader(&h)
	if f.Src.AID != h.SrcAID || f.Dst.EphID != h.DstEphID {
		t.Error("FlowFromHeader fields")
	}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src {
		t.Error("Reverse")
	}
	if r.Reverse() != f {
		t.Error("double Reverse")
	}
	if !strings.Contains(f.String(), "->") {
		t.Errorf("Flow.String() = %q", f)
	}
	if !strings.Contains(f.Src.String(), "AS100") {
		t.Errorf("Endpoint.String() = %q", f.Src)
	}
}

func TestFlowFastHashSymmetric(t *testing.T) {
	f := func(sa, da uint32, se, de [16]byte) bool {
		fl := Flow{
			Src: Endpoint{AID: ephid.AID(sa), EphID: ephid.EphID(se)},
			Dst: Endpoint{AID: ephid.AID(da), EphID: ephid.EphID(de)},
		}
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFastHashDistribution(t *testing.T) {
	// Different endpoints should rarely collide; hash 4096 distinct
	// endpoints into 8 buckets and require every bucket be non-empty.
	var buckets [8]int
	for i := 0; i < 4096; i++ {
		var e Endpoint
		e.AID = ephid.AID(i)
		e.EphID[0] = byte(i)
		e.EphID[1] = byte(i >> 8)
		buckets[e.FastHash()&7]++
	}
	for i, n := range buckets {
		if n == 0 {
			t.Errorf("bucket %d empty — degenerate hash", i)
		}
	}
}
