package wire

import (
	"apna/internal/crypto"
)

// Per-packet MAC computation (Section IV-D2): every packet a host sends
// carries an 8-byte MAC computed with the key it shares with its AS, so
// the AS can link the packet to the host and drop spoofed traffic.
//
// The MAC covers the whole header except the MAC field itself and the
// mutable HopLimit byte (zeroed in the MAC input so transit decrements
// do not invalidate the shutoff-evidence check of Figure 5), followed by
// the payload.

var zeroByte = []byte{0}

// PacketMAC computes and verifies per-packet MACs for one host<->AS key.
// It wraps an AES-CMAC instance and is therefore not safe for concurrent
// use; pipelines allocate one per worker.
type PacketMAC struct {
	cmac *crypto.CMAC
}

// NewPacketMAC builds a PacketMAC from the host<->AS MAC key (the MAC
// half of kHA).
func NewPacketMAC(key []byte) (*PacketMAC, error) {
	c, err := crypto.NewCMAC(key)
	if err != nil {
		return nil, err
	}
	return &PacketMAC{cmac: c}, nil
}

// Apply computes the MAC over the frame (header plus payload) and writes
// it into the frame's MAC field. The frame must be a serialized packet
// of at least HeaderSize bytes.
func (m *PacketMAC) Apply(frame []byte) {
	m.cmac.SumTruncated(frame[offMAC:offMAC+MACSize], MACSize,
		frame[:offHopLimit], zeroByte, frame[offHopLimit+1:offMAC], frame[HeaderSize:])
}

// Verify reports whether the frame's MAC field matches its contents.
func (m *PacketMAC) Verify(frame []byte) bool {
	return m.cmac.Verify(frame[offMAC:offMAC+MACSize],
		frame[:offHopLimit], zeroByte, frame[offHopLimit+1:offMAC], frame[HeaderSize:])
}
