package wire

import (
	"testing"
	"testing/quick"

	"apna/internal/crypto"
)

func testMAC(t *testing.T) *PacketMAC {
	t.Helper()
	key := crypto.DeriveKey([]byte("host-as-secret"), "test/mac", crypto.SymKeySize)
	m, err := NewPacketMAC(key)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func macFrame(t *testing.T, payload []byte) []byte {
	t.Helper()
	p := Packet{Header: sampleHeader(), Payload: payload}
	frame, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestPacketMACApplyVerify(t *testing.T) {
	m := testMAC(t)
	frame := macFrame(t, []byte("payload bytes"))
	m.Apply(frame)
	if !m.Verify(frame) {
		t.Fatal("freshly MACed frame does not verify")
	}
}

func TestPacketMACWrongKey(t *testing.T) {
	m := testMAC(t)
	frame := macFrame(t, []byte("payload"))
	m.Apply(frame)

	other, err := NewPacketMAC(crypto.DeriveKey([]byte("different"), "test/mac", crypto.SymKeySize))
	if err != nil {
		t.Fatal(err)
	}
	if other.Verify(frame) {
		t.Error("MAC verified under wrong key — spoofing possible")
	}
}

func TestPacketMACDetectsTampering(t *testing.T) {
	m := testMAC(t)
	frame := macFrame(t, []byte("sensitive payload"))
	m.Apply(frame)
	for i := range frame {
		if i == offHopLimit {
			continue // deliberately not covered
		}
		frame[i] ^= 1
		if m.Verify(frame) {
			t.Fatalf("tampered byte %d accepted", i)
		}
		frame[i] ^= 1
	}
}

func TestPacketMACSurvivesHopLimitDecrement(t *testing.T) {
	// Shutoff evidence verification (Figure 5) happens after transit;
	// the MAC must survive hop-limit decrements.
	m := testMAC(t)
	frame := macFrame(t, []byte("evidence"))
	m.Apply(frame)
	for i := 0; i < 10; i++ {
		FrameDecrementHopLimit(frame)
	}
	if !m.Verify(frame) {
		t.Error("MAC broken by hop-limit decrement")
	}
}

func TestPacketMACPayloadSizesProperty(t *testing.T) {
	m := testMAC(t)
	f := func(payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		frame := macFrame(&testing.T{}, payload)
		m.Apply(frame)
		return m.Verify(frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
