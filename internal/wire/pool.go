package wire

import "sync"

// FramePool recycles frame buffers across packets so steady-state
// encoding paths allocate nothing. Buffers are handed out empty
// (length 0) with at least the requested capacity; AppendTo-style
// encoders then fill them without growing.
//
// The pool is size-classed in powers of two from MinFrameCap up to
// MaxFrameCap; requests above MaxFrameCap fall through to plain
// allocation (and are not pooled on return either), so pathological
// payloads cannot pin large buffers forever. Buffers are stored as
// *[]byte so Put does not box the slice header.
type FramePool struct {
	classes [framePoolClasses]sync.Pool
	// headers recycles the *[]byte boxes Put files buffers under, so a
	// steady-state Get/Put cycle allocates nothing (not even the box).
	headers sync.Pool
}

const (
	// MinFrameCap is the smallest pooled buffer capacity: one header
	// plus a small payload.
	MinFrameCap = 128
	// MaxFrameCap is the largest pooled buffer capacity. It covers the
	// biggest paper frame size (1518 B) plus tunnel encapsulation.
	MaxFrameCap = 4096

	framePoolClasses = 6 // 128, 256, 512, 1024, 2048, 4096
)

// Get returns an empty buffer with capacity at least n.
func (p *FramePool) Get(n int) []byte {
	size, c := MinFrameCap, 0
	for size < n {
		size <<= 1
		c++
	}
	if size > MaxFrameCap {
		return make([]byte, 0, n)
	}
	if v := p.classes[c].Get(); v != nil {
		h := v.(*[]byte)
		buf := (*h)[:0]
		*h = nil
		p.headers.Put(h)
		return buf
	}
	return make([]byte, 0, size)
}

// Put returns a buffer to the pool, filing it under the largest size
// class its capacity satisfies so a later Get never receives a buffer
// smaller than the class promises. Buffers below MinFrameCap or above
// MaxFrameCap are dropped.
func (p *FramePool) Put(buf []byte) {
	if cap(buf) > MaxFrameCap {
		return
	}
	for c := framePoolClasses - 1; c >= 0; c-- {
		if cap(buf) >= MinFrameCap<<c {
			h, _ := p.headers.Get().(*[]byte)
			if h == nil {
				h = new([]byte)
			}
			*h = buf[:0]
			p.classes[c].Put(h)
			return
		}
	}
}
