package wire

import "testing"

func TestFramePoolRoundTrip(t *testing.T) {
	var p FramePool
	buf := p.Get(200)
	if len(buf) != 0 || cap(buf) < 200 {
		t.Fatalf("got len %d cap %d", len(buf), cap(buf))
	}
	buf = append(buf, make([]byte, 200)...)
	p.Put(buf)
	again := p.Get(200)
	if len(again) != 0 || cap(again) < 200 {
		t.Fatalf("recycled buffer: len %d cap %d", len(again), cap(again))
	}
}

func TestFramePoolOversizeBypasses(t *testing.T) {
	var p FramePool
	buf := p.Get(MaxFrameCap + 1)
	if cap(buf) < MaxFrameCap+1 {
		t.Fatalf("cap %d", cap(buf))
	}
	p.Put(buf) // dropped, not pooled
	if got := p.Get(MinFrameCap); cap(got) > MaxFrameCap {
		t.Fatal("oversize buffer leaked into a class")
	}
}

func TestFramePoolUndersizedPutIsFiledCorrectly(t *testing.T) {
	var p FramePool
	// A 300-cap buffer satisfies the 256 class but not 512: a Get(512)
	// after Put must not hand it back.
	p.Put(make([]byte, 0, 300))
	buf := p.Get(512)
	if cap(buf) < 512 {
		t.Fatalf("Get(512) returned cap %d", cap(buf))
	}
	small := p.Get(200)
	if cap(small) < 200 {
		t.Fatalf("Get(200) returned cap %d", cap(small))
	}
}

func TestFramePoolTinyPutDropped(t *testing.T) {
	var p FramePool
	p.Put(make([]byte, 0, 8)) // below MinFrameCap: dropped, must not panic
	if buf := p.Get(64); cap(buf) < 64 {
		t.Fatalf("cap %d", cap(buf))
	}
}

// TestFramePoolSteadyStateAllocs asserts a warm Get/Put cycle allocates
// nothing, including the internal pointer box.
func TestFramePoolSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	var p FramePool
	// Warm: seed the class and the header pool.
	for i := 0; i < 4; i++ {
		p.Put(p.Get(256))
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf := p.Get(256)
		p.Put(buf)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f times per op", allocs)
	}
}
