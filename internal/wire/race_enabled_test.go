//go:build race

package wire

// raceEnabled reports whether the race detector is compiled in; alloc
// assertions are skipped under it (instrumentation allocates, and
// sync.Pool intentionally drops items at random in race mode).
const raceEnabled = true
