package apna

import (
	"fmt"
	"time"

	"apna/internal/host"
	"apna/internal/netsim"
)

// The EphID lifecycle engine. APNA's privacy and accountability story
// depends on hosts continuously cycling short-lived EphIDs through the
// MS (paper Sections V–VII): identifiers are issued, carry flows, are
// renewed before they expire, and the state they leave behind —
// revocation-list entries, revoked host_info records, dead pool slots —
// is garbage collected. This file is that engine: a pair of recurring
// virtual-time timers (netsim.Simulator.Every) that
//
//   - watch every host's pool and reap expired identifiers,
//   - start renewals (ms.ReqFlagRenew, rate-limited per host by the MS)
//     for identifiers inside the renewal lead window,
//   - migrate live connections onto the renewed successor via an
//     in-place re-handshake (host.Migrate), retrying migrations whose
//     handshakes chaos ate, and retire the predecessor once its flows
//     have moved, and
//   - run the scheduled GC pass over every AS (expired revocation-list
//     entries, reapable revoked host entries).
//
// Timers fire interleaved with traffic in strict virtual-time order and
// sweep across idle gaps under RunFor/RunUntil, so "heavy traffic over
// hours" scenarios renew exactly as live ones do.

// Lifetimes configures the lifecycle engine. The zero value of any
// field falls back to the DefaultLifetimes value.
type Lifetimes struct {
	// RenewLead is how long before an EphID's expiry its renewal
	// starts. It must exceed CheckInterval plus a round trip to the MS,
	// or flows hit the border router's drop-expired window while the
	// renewal is still in flight.
	RenewLead time.Duration
	// CheckInterval is the pool-watch cadence.
	CheckInterval time.Duration
	// GCInterval is the revocation-list / host_info reap cadence.
	GCInterval time.Duration
	// MigrateRetry is how long a migration re-handshake may stay in
	// flight before the engine aborts and redials it (chaotic inter-AS
	// links can eat the handshake or its acknowledgment).
	MigrateRetry time.Duration
	// RenewLifetime is the validity requested for successors, in
	// seconds; 0 asks for the MS policy default.
	RenewLifetime uint32
	// RevokedRetention is how long revoked host_info entries are kept
	// before GC reaps them; 0 uses the MS policy's MaxLifetime (no
	// EphID of the host can outlive that).
	RevokedRetention time.Duration
}

// DefaultLifetimes returns a cadence suited to the default simulation
// latencies: renewals start 30 virtual seconds ahead of expiry, checked
// every 5 seconds, with GC sweeping every minute.
func DefaultLifetimes() Lifetimes {
	return Lifetimes{
		RenewLead:     30 * time.Second,
		CheckInterval: 5 * time.Second,
		GCInterval:    time.Minute,
		MigrateRetry:  2 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultLifetimes.
func (lt Lifetimes) withDefaults() Lifetimes {
	def := DefaultLifetimes()
	if lt.RenewLead <= 0 {
		lt.RenewLead = def.RenewLead
	}
	if lt.CheckInterval <= 0 {
		lt.CheckInterval = def.CheckInterval
	}
	if lt.GCInterval <= 0 {
		lt.GCInterval = def.GCInterval
	}
	if lt.MigrateRetry <= 0 {
		lt.MigrateRetry = def.MigrateRetry
	}
	return lt
}

// LifecycleStats counts what the engine did, in the same spirit as the
// border router's per-verdict counters.
type LifecycleStats struct {
	// Ticks and GCTicks count timer firings.
	Ticks, GCTicks uint64
	// RenewalsStarted/Completed/Failed count renewal requests; Failed
	// includes MS rejections (rate limit, unknown host).
	RenewalsStarted, RenewalsCompleted, RenewalsFailed uint64
	// MigrationsStarted/Completed/Retried/Failed count connection
	// re-handshakes onto successor EphIDs.
	MigrationsStarted, MigrationsCompleted, MigrationsRetried, MigrationsFailed uint64
	// PoolReaped counts expired EphIDs dropped from host pools;
	// Retired counts predecessors removed after their flows migrated.
	PoolReaped, Retired uint64
	// RevocationsReaped and HostsReaped count the scheduled GC's
	// harvest across all ASes.
	RevocationsReaped, HostsReaped uint64
}

// LifecycleEvent is one engine action, surfaced to observers (scenario
// referees record renewals and migration dials for the invariant
// checker; harnesses log failures).
type LifecycleEvent struct {
	// Kind is "renewed", "renew-failed", "migrate-dial",
	// "migrate-failed" or "retired".
	Kind string
	// Host is the facade host the event belongs to.
	Host *Host
	// Old is the predecessor EphID; New the successor (nil for
	// "retired" events' New).
	Old, New *host.OwnedEphID
	// Peer is the remote endpoint of a "migrate-dial" event.
	Peer Endpoint
	// Err carries the failure of a "renew-failed" / "migrate-failed"
	// event.
	Err error
}

// Lifecycle is the running engine. It belongs to the simulator's
// goroutine like everything else in the facade.
type Lifecycle struct {
	in    *Internet
	cfg   Lifetimes
	stats LifecycleStats

	check, gc *netsim.Timer
	// renewing guards against double renewal of one EphID. The guard is
	// held from the renewal request until the predecessor is retired —
	// not just while the request is in flight: the predecessor stays in
	// the pool (and in ExpiringBefore's watch list) while its flows
	// migrate, and re-renewing it every tick would churn identifiers
	// straight into the MS rate limiter. A failed renewal clears the
	// guard so the next tick retries.
	renewing map[EphID]bool
	// migrating tracks in-flight migration re-handshakes per
	// connection, so ticks can retry ones that chaos swallowed. The
	// slice keeps retry scanning deterministic (map iteration is not).
	migrating []*migration

	observer func(LifecycleEvent)
}

// migration is one tracked connection re-handshake. started is false
// while the connection's own first handshake is still in flight — the
// successor dial waits for it (a predecessor with a pending dial must
// not be retired out from under the flow it is about to carry).
type migration struct {
	h        *Host
	conn     *host.Conn
	old, new *host.OwnedEphID
	deadline time.Duration // virtual time after which the dial is retried
	started  bool
	done     bool
}

// StartLifecycle starts the engine with the given configuration.
// Starting twice replaces the previous engine (its timers stop).
func (in *Internet) StartLifecycle(lt Lifetimes) *Lifecycle {
	if in.lifecycle != nil {
		in.lifecycle.Stop()
	}
	lc := &Lifecycle{in: in, cfg: lt.withDefaults(), renewing: make(map[EphID]bool)}
	lc.check = in.Sim.Every(lc.cfg.CheckInterval, lc.tick)
	lc.gc = in.Sim.Every(lc.cfg.GCInterval, lc.gcTick)
	in.lifecycle = lc
	return lc
}

// Lifecycle returns the running engine, or nil.
func (in *Internet) Lifecycle() *Lifecycle { return in.lifecycle }

// Stop cancels the engine's timers. In-flight renewals and migrations
// still complete when their replies arrive; nothing new starts.
func (lc *Lifecycle) Stop() {
	lc.check.Stop()
	lc.gc.Stop()
	if lc.in.lifecycle == lc {
		lc.in.lifecycle = nil
	}
}

// Stats returns a copy of the engine's counters.
func (lc *Lifecycle) Stats() LifecycleStats { return lc.stats }

// SetObserver installs a callback fired on every engine action.
func (lc *Lifecycle) SetObserver(fn func(LifecycleEvent)) { lc.observer = fn }

func (lc *Lifecycle) emit(ev LifecycleEvent) {
	if lc.observer != nil {
		lc.observer(ev)
	}
}

// tick is one pool-maintenance pass: reap expired identifiers, retry
// stuck migrations, and start renewals for identifiers entering the
// lead window.
func (lc *Lifecycle) tick() {
	lc.stats.Ticks++
	lc.retryMigrations()
	deadline := lc.in.Sim.NowUnix() + int64(lc.cfg.RenewLead/time.Second)
	for _, h := range lc.in.Hosts() {
		lc.stats.PoolReaped += uint64(h.Stack.ReapExpired())
		for _, o := range h.Stack.ExpiringBefore(deadline) {
			lc.renew(h, o)
		}
	}
}

// renew starts one renewal unless one is already in flight for the
// identifier. Receive-only identifiers are skipped: their renewal is
// republication under a service name, which belongs to the application
// that published them.
func (lc *Lifecycle) renew(h *Host, old *host.OwnedEphID) {
	if old.Cert.Kind == KindReceiveOnly {
		return
	}
	e := old.Cert.EphID
	if lc.renewing[e] {
		return
	}
	lc.renewing[e] = true
	lc.stats.RenewalsStarted++
	err := h.Stack.RequestRenewal(old, lc.cfg.RenewLifetime, func(succ *host.OwnedEphID, err error) {
		if err != nil {
			delete(lc.renewing, e) // retried next tick
			lc.stats.RenewalsFailed++
			lc.emit(LifecycleEvent{Kind: "renew-failed", Host: h, Old: old, Err: err})
			return
		}
		lc.stats.RenewalsCompleted++
		lc.emit(LifecycleEvent{Kind: "renewed", Host: h, Old: old, New: succ})
		lc.adopt(h, old, succ)
	})
	if err != nil {
		delete(lc.renewing, e)
		lc.stats.RenewalsFailed++
	}
}

// adopt moves the predecessor's connections onto the successor and
// retires the predecessor. A connection whose own first handshake is
// still in flight is tracked too — its migration dials once it
// establishes; retiring its identifier now would strand the flow on
// an un-renewable EphID. With no connections at all the predecessor
// is retired immediately — it has a successor, so letting Acquire
// hand out an identifier with seconds to live would only schedule
// another renewal.
func (lc *Lifecycle) adopt(h *Host, old, succ *host.OwnedEphID) {
	moved := false
	for _, c := range h.Stack.Conns() {
		if c.Local() != old || c.Closed() || c.Migrating() {
			continue
		}
		moved = true
		m := &migration{h: h, conn: c, old: old, new: succ}
		lc.stats.MigrationsStarted++
		if c.Established() {
			m.started = true
			if !lc.dialMigration(m) {
				continue
			}
		}
		lc.migrating = append(lc.migrating, m)
	}
	if !moved {
		lc.retire(h, old)
	}
}

// dialMigration issues (or re-issues) the migration handshake for m,
// reporting whether the dial left the host.
func (lc *Lifecycle) dialMigration(m *migration) bool {
	m.deadline = lc.in.Sim.Now() + lc.cfg.MigrateRetry
	lc.emit(LifecycleEvent{Kind: "migrate-dial", Host: m.h, Old: m.old, New: m.new, Peer: m.conn.Peer()})
	err := m.h.Stack.Migrate(m.conn, m.new, func(error) {
		m.done = true
		lc.stats.MigrationsCompleted++
		lc.retire(m.h, m.old)
	})
	if err != nil {
		lc.abandonMigration(m, err)
		return false
	}
	return true
}

// abandonMigration gives up on a migration: the transferred per-flow
// lease (if any) returns to the pool, and the predecessor retires so
// its renewal guard clears — otherwise the identifier would be wedged
// out of every future renewal.
func (lc *Lifecycle) abandonMigration(m *migration, err error) {
	lc.emit(LifecycleEvent{Kind: "migrate-failed", Host: m.h, Old: m.old, New: m.new, Err: err})
	lc.stats.MigrationsFailed++
	m.done = true
	if m.started {
		// Only a started migration holds the transferred lease; before
		// that the successor was free in the pool and may have been
		// legitimately leased to another flow by Acquire.
		m.h.Stack.Release(m.new)
	}
	lc.retire(m.h, m.old)
}

// retryMigrations advances tracked migrations: waiting ones dial once
// their connection establishes (or are abandoned when it dies),
// started ones whose handshake (or ack) never arrived by their
// deadline are redialed, and finished entries are compacted away.
func (lc *Lifecycle) retryMigrations() {
	now := lc.in.Sim.Now()
	kept := lc.migrating[:0]
	for _, m := range lc.migrating {
		if m.done {
			continue
		}
		switch {
		case !m.started:
			// Waiting for the connection's own first handshake.
			if m.conn.Closed() || !m.h.Stack.Tracks(m.conn) {
				// Closed, or its dial was abandoned at quiescence:
				// nothing left to migrate.
				lc.abandonMigration(m, host.ErrNoSession)
				continue
			}
			if m.conn.Established() {
				m.started = true
				if !lc.dialMigration(m) {
					continue
				}
			}
		case now >= m.deadline && m.conn.Migrating():
			// The dial is stale: abort it and redial from the successor.
			// If the lost frame was only the acknowledgment, the
			// responder's handshake-replay cache answers the redial with
			// the original ack, so retrying is idempotent.
			lc.stats.MigrationsRetried++
			m.h.Stack.AbortMigration(m.conn, m.new)
			if !lc.dialMigration(m) {
				continue
			}
		}
		kept = append(kept, m)
	}
	for i := len(kept); i < len(lc.migrating); i++ {
		lc.migrating[i] = nil
	}
	lc.migrating = kept
}

// retire removes a superseded identifier from the pool and clears its
// renewal guard (idempotent — migration completions of several flows
// sharing one EphID all call it).
func (lc *Lifecycle) retire(h *Host, old *host.OwnedEphID) {
	delete(lc.renewing, old.Cert.EphID)
	if _, ok := h.Stack.Lookup(old.Cert.EphID); !ok {
		return
	}
	h.Stack.Release(old)
	h.Stack.Retire(old)
	lc.stats.Retired++
	lc.emit(LifecycleEvent{Kind: "retired", Host: h, Old: old})
}

// gcTick is one scheduled GC pass over every AS.
func (lc *Lifecycle) gcTick() {
	lc.stats.GCTicks++
	retention := int64(lc.cfg.RevokedRetention / time.Second)
	if retention <= 0 {
		retention = int64(lc.in.opts.Policy.MaxLifetime)
	}
	for _, as := range lc.in.ASes() {
		rev, hosts := as.runGC(retention)
		lc.stats.RevocationsReaped += uint64(rev)
		lc.stats.HostsReaped += uint64(hosts)
	}
}

// RenewAsync requests a successor for an EphID this host owns, through
// the MS's rate-limited renewal path, without driving the simulator.
// The future resolves with the installed successor; live flows on the
// old identifier are NOT migrated — use the lifecycle engine
// (WithLifetimes) for automatic migration, or Stack.Migrate directly.
func (h *Host) RenewAsync(old *host.OwnedEphID, lifetime uint32) *Pending[*host.OwnedEphID] {
	p := newPending[*host.OwnedEphID]()
	err := h.Stack.RequestRenewal(old, lifetime, func(o *host.OwnedEphID, err error) {
		p.complete(o, err)
	})
	if err != nil {
		return failedPending[*host.OwnedEphID](err)
	}
	return p
}

// Renew synchronously renews an EphID, driving the simulator until the
// successor arrives.
func (h *Host) Renew(old *host.OwnedEphID, lifetime uint32) (*host.OwnedEphID, error) {
	return AwaitResult(h.as.in, h.RenewAsync(old, lifetime))
}

// String renders an event for logs.
func (ev LifecycleEvent) String() string {
	switch ev.Kind {
	case "renewed":
		return fmt.Sprintf("renewed %v -> %v", ev.Old.Cert.EphID, ev.New.Cert.EphID)
	case "migrate-dial":
		return fmt.Sprintf("migrate %v -> %v toward %v", ev.Old.Cert.EphID, ev.New.Cert.EphID, ev.Peer)
	case "retired":
		return fmt.Sprintf("retired %v", ev.Old.Cert.EphID)
	case "renew-failed":
		return fmt.Sprintf("renew %v failed: %v", ev.Old.Cert.EphID, ev.Err)
	case "migrate-failed":
		return fmt.Sprintf("migrate %v -> %v failed: %v", ev.Old.Cert.EphID, ev.New.Cert.EphID, ev.Err)
	default:
		return ev.Kind
	}
}
