package apna

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"apna/internal/border"
	"apna/internal/ephid"
	"apna/internal/host"
	"apna/internal/ms"
)

// lifecycleWorld builds a two-AS internet with the lifecycle engine
// running and a server flow ready to dial: bob publishes a long-lived
// data EphID, alice holds a pool of short-lived per-flow identifiers.
type lifecycleWorld struct {
	in         *Internet
	alice, bob *Host
	srv        *host.OwnedEphID
}

func newLifecycleWorld(t *testing.T, poolSize int, life uint32, lt Lifetimes) *lifecycleWorld {
	t.Helper()
	in, err := New(1,
		WithAS(100, "alice"),
		WithAS(200, "bob"),
		WithLink(100, 200, 10*time.Millisecond),
		WithLifetimes(lt))
	if err != nil {
		t.Fatal(err)
	}
	w := &lifecycleWorld{in: in, alice: in.Host("alice"), bob: in.Host("bob")}
	if w.srv, err = w.bob.NewEphID(KindData, 24*3600); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < poolSize; i++ {
		if _, err := w.alice.NewEphID(KindData, life); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestDialCloseRedialBeyondPoolSize is the pool-exhaustion regression
// at the integration level: a per-flow host dials, closes and re-dials
// more flows than its pool holds; before Close released the lease,
// the fourth dial starved with ErrNoEphID.
func TestDialCloseRedialBeyondPoolSize(t *testing.T) {
	const poolSize = 2
	w := newLifecycleWorld(t, poolSize, 24*3600, DefaultLifetimes())
	received := 0
	w.bob.Stack.OnMessage(func(m Message) { received++ })

	for round := 0; round < 3*poolSize; round++ {
		id, err := w.alice.Stack.Acquire(host.PerFlow, "")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		conn, err := w.alice.Connect(id, &w.srv.Cert, nil)
		if err != nil {
			t.Fatalf("round %d connect: %v", round, err)
		}
		if err := w.alice.Send(conn, []byte(fmt.Sprintf("round %d", round))); err != nil {
			t.Fatalf("round %d send: %v", round, err)
		}
		conn.Close()
	}
	if received != 3*poolSize {
		t.Errorf("received %d, want %d", received, 3*poolSize)
	}
	if got := w.alice.Stack.Stats().EphIDsReleased; got != 3*poolSize {
		t.Errorf("EphIDsReleased = %d", got)
	}
}

// TestConcurrentFlowsBeyondPoolAcrossWindows covers the acceptance
// gate in miniature: concurrent flows opened and closed over several
// validity windows, with the engine renewing the pool, never starve.
func TestConcurrentFlowsBeyondPoolAcrossWindows(t *testing.T) {
	const poolSize = 3
	w := newLifecycleWorld(t, poolSize, 60, Lifetimes{
		RenewLead: 20 * time.Second, CheckInterval: 5 * time.Second,
		RenewLifetime: 60,
	})
	received := 0
	w.bob.Stack.OnMessage(func(m Message) { received++ })

	total := 0
	for window := 0; window < 3; window++ {
		// Two concurrent flows per window, torn down before the next.
		var conns []*Conn
		for k := 0; k < 2; k++ {
			id, err := w.alice.Stack.Acquire(host.PerFlow, "")
			if err != nil {
				t.Fatalf("window %d: %v", window, err)
			}
			conn, err := w.alice.Connect(id, &w.srv.Cert, nil)
			if err != nil {
				t.Fatalf("window %d connect: %v", window, err)
			}
			conns = append(conns, conn)
		}
		for _, c := range conns {
			if err := w.alice.Send(c, []byte("data")); err != nil {
				t.Fatal(err)
			}
			total++
			c.Close()
		}
		w.in.RunFor(60 * time.Second) // cross a validity window
	}
	if received != total {
		t.Errorf("received %d, want %d", received, total)
	}
	if st := w.in.Lifecycle().Stats(); st.RenewalsCompleted == 0 {
		t.Error("engine never renewed")
	}
}

// TestExpiryMidFlow drives a session across its EphID's expiry with
// the engine disabled: post-expiry frames die at the border with
// drop-expired until a manual renewal and migration restore the flow.
func TestExpiryMidFlow(t *testing.T) {
	w := newLifecycleWorld(t, 1, 60, DefaultLifetimes())
	w.in.Lifecycle().Stop() // manual control: the engine must not rescue the flow
	received := 0
	w.bob.Stack.OnMessage(func(m Message) { received++ })

	id, err := w.alice.Stack.Acquire(host.PerFlow, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.alice.Connect(id, &w.srv.Cert, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.alice.Send(conn, []byte("pre-expiry")); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Fatalf("pre-expiry delivery: %d", received)
	}

	// Advance virtual time past the EphID's validity.
	w.in.RunFor(2 * time.Minute)

	rtr := w.in.AS(100).Router
	dropsBefore := rtr.Stats().Get(border.VerdictDropExpired)
	if err := w.alice.Send(conn, []byte("post-expiry")); err != nil {
		t.Fatal(err)
	}
	if got := rtr.Stats().Get(border.VerdictDropExpired); got != dropsBefore+1 {
		t.Errorf("drop-expired = %d, want %d", got, dropsBefore+1)
	}
	if received != 1 {
		t.Fatalf("post-expiry frame delivered (%d)", received)
	}

	// Renewal + migration restore the flow. Renewing an identifier
	// that already lapsed is the recovery path and must succeed.
	succ, err := w.alice.Renew(id, 60)
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	migrated := false
	if err := w.alice.Stack.Migrate(conn, succ, func(error) { migrated = true }); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	w.in.RunUntilIdle()
	if !migrated {
		t.Fatal("migration never completed")
	}
	if conn.Local() != succ {
		t.Error("connection still on expired EphID")
	}
	if err := w.alice.Send(conn, []byte("post-renewal")); err != nil {
		t.Fatal(err)
	}
	if received != 2 {
		t.Errorf("post-renewal delivery: %d, want 2", received)
	}
}

// TestEngineRenewsAndMigratesLiveFlow: with the engine running, a flow
// crossing several validity windows keeps delivering and hops onto
// fresh identifiers without the application doing anything.
func TestEngineRenewsAndMigratesLiveFlow(t *testing.T) {
	w := newLifecycleWorld(t, 1, 60, Lifetimes{
		RenewLead: 20 * time.Second, CheckInterval: 5 * time.Second,
		RenewLifetime: 60,
	})
	received := 0
	w.bob.Stack.OnMessage(func(m Message) { received++ })

	id, err := w.alice.Stack.Acquire(host.PerFlow, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.alice.Connect(id, &w.srv.Cert, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := conn.Local()
	for window := 0; window < 3; window++ {
		if err := w.alice.Send(conn, []byte("beat")); err != nil {
			t.Fatalf("window %d: %v", window, err)
		}
		w.in.RunFor(60 * time.Second)
	}
	if received != 3 {
		t.Errorf("received %d, want 3", received)
	}
	if conn.Local() == first {
		t.Error("connection never migrated off its original EphID")
	}
	st := w.in.Lifecycle().Stats()
	if st.MigrationsCompleted < 2 || st.Retired == 0 {
		t.Errorf("engine stats: %+v", st)
	}
	// The predecessors are gone from the pool; only live identifiers
	// remain.
	if _, ok := w.alice.Stack.Lookup(first.Cert.EphID); ok {
		t.Error("superseded EphID still pooled")
	}
}

// TestRenewRateLimitSurfacesTypedError: the MS's denial arrives as
// ms.ErrRenewRateLimited through the facade future, not as a silent
// timeout.
func TestRenewRateLimitSurfacesTypedError(t *testing.T) {
	opts := DefaultOptions()
	opts.Policy.RenewBurst = 2
	opts.Policy.RenewWindow = 3600
	in, err := New(1,
		WithOptions(opts),
		WithAS(100, "alice"),
		WithAS(200, "bob"),
		WithLink(100, 200, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	alice := in.Host("alice")
	id, err := alice.NewEphID(KindData, 600)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if id, err = alice.Renew(id, 600); err != nil {
			t.Fatalf("renewal %d: %v", i, err)
		}
	}
	if _, err := alice.Renew(id, 600); !errors.Is(err, ms.ErrRenewRateLimited) {
		t.Errorf("over budget: %v", err)
	}
	// The denial consumed its reply slot: the next issuance still
	// matches its own reply (FIFO stays synchronized).
	if _, err := alice.NewEphID(KindData, 600); err != nil {
		t.Errorf("issuance after denial: %v", err)
	}
}

// TestScheduledGCReapsRevocations: revocation-list entries reap on the
// engine's GC cadence once their EphIDs expire — no manual GC call.
func TestScheduledGCReapsRevocations(t *testing.T) {
	w := newLifecycleWorld(t, 1, 60, Lifetimes{GCInterval: 30 * time.Second})
	id, err := w.alice.Stack.Acquire(host.PerFlow, "")
	if err != nil {
		t.Fatal(err)
	}
	// Voluntarily revoke the identifier (Section VIII-G2).
	if err := w.in.AS(100).Agent.RevokeVoluntary(w.alice.HID(), id.Cert.EphID); err != nil {
		t.Fatal(err)
	}
	if got := w.in.AS(100).Router.Revoked().Len(); got != 1 {
		t.Fatalf("revocation list = %d", got)
	}
	// Crossing the expiry horizon, the scheduled GC reaps the entry.
	w.in.RunFor(3 * time.Minute)
	if got := w.in.AS(100).Router.Revoked().Len(); got != 0 {
		t.Errorf("revocation list = %d after GC horizon", got)
	}
	if st := w.in.Lifecycle().Stats(); st.RevocationsReaped != 1 {
		t.Errorf("RevocationsReaped = %d", st.RevocationsReaped)
	}
}

// TestWithLifetimesValidation: negative durations are caught at
// topology validation, before any construction.
func TestWithLifetimesValidation(t *testing.T) {
	_, err := New(1,
		WithAS(100, "a"),
		WithLifetimes(Lifetimes{RenewLead: -time.Second}))
	if !errors.Is(err, ErrBadTopology) {
		t.Errorf("err = %v", err)
	}
}

// TestCloseFailsFurtherSends: a closed connection refuses data instead
// of silently queueing into a dead flow.
func TestCloseFailsFurtherSends(t *testing.T) {
	w := newLifecycleWorld(t, 1, 3600, DefaultLifetimes())
	id, err := w.alice.Stack.Acquire(host.PerFlow, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.alice.Connect(id, &w.srv.Cert, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	conn.Close() // idempotent
	if err := conn.Send([]byte("x")); !errors.Is(err, host.ErrNoSession) {
		t.Errorf("send on closed conn: %v", err)
	}
}

// TestPickServingRefusesLeasedEphID end to end: a server whose only
// sendable identifier is leased to a per-flow connection must not
// answer a receive-only dial with it (doing so would link the flows).
func TestPickServingRefusesLeasedEphID(t *testing.T) {
	w := newLifecycleWorld(t, 1, 3600, DefaultLifetimes())

	// Bob: a receive-only identifier plus ONE data identifier, leased
	// out to bob's own outbound flow.
	ro, err := w.bob.NewEphID(ephid.KindReceiveOnly, 3600)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := w.bob.Stack.Acquire(host.PerFlow, "")
	if err != nil {
		t.Fatal(err)
	}

	id, err := w.alice.Stack.Acquire(host.PerFlow, "")
	if err != nil {
		t.Fatal(err)
	}
	drops := w.bob.Stack.Stats().DropBadHandshake
	p := w.alice.ConnectAsync(id, &ro.Cert, nil)
	if err := w.in.AwaitWithin(time.Second, p); err == nil {
		t.Fatal("dial served from a leased per-flow EphID")
	}
	if got := w.bob.Stack.Stats().DropBadHandshake; got != drops+1 {
		t.Errorf("DropBadHandshake = %d, want %d", got, drops+1)
	}

	// Releasing the lease makes the dial serveable again. Alice's
	// failed dial also returns its identifier before redialing.
	w.bob.Stack.Release(lease)
	w.alice.Stack.Release(id)
	id2, err := w.alice.Stack.Acquire(host.PerFlow, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.alice.Connect(id2, &ro.Cert, nil); err != nil {
		t.Errorf("dial after release: %v", err)
	}
}

// TestCloseDuringMigrationReturnsLease: closing a connection while its
// migration re-handshake is in flight must not leak the successor's
// per-flow lease — the close-vs-migration race found in review.
func TestCloseDuringMigrationReturnsLease(t *testing.T) {
	w := newLifecycleWorld(t, 1, 3600, DefaultLifetimes())
	w.in.Lifecycle().Stop() // drive the migration by hand
	id, err := w.alice.Stack.Acquire(host.PerFlow, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := w.alice.Connect(id, &w.srv.Cert, nil)
	if err != nil {
		t.Fatal(err)
	}
	succ, err := w.alice.Renew(id, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.alice.Stack.Migrate(conn, succ, nil); err != nil {
		t.Fatal(err)
	}
	// Close races the in-flight migration ack.
	conn.Close()
	w.in.RunUntilIdle()
	// Both identifiers are free again: the predecessor via Close, the
	// successor via the mid-migration close path.
	got, err := w.alice.Stack.Acquire(host.PerFlow, "")
	if err != nil {
		t.Fatalf("successor lease leaked: %v", err)
	}
	if got != id && got != succ {
		t.Errorf("unexpected acquire %v", got.Cert.EphID)
	}
	w.alice.Stack.Release(got)
	if _, err := w.alice.Stack.Acquire(host.PerFlow, ""); err != nil {
		t.Fatalf("second identifier still leased: %v", err)
	}
}
