package apna

import (
	"apna/internal/population"
)

// Population wiring: the facade's entry point to the trace-driven
// population workload engine (experiment E11). Like Throughput, a
// population run does NOT go through the deterministic event simulator:
// it drives the control-plane engines — MS issuance and renewal, hostdb
// churn and GC, AA strikes, accountability receipts and digests — from
// share-nothing workers on real cores, modeling each host as a few
// dozen bytes of state instead of a simulated process. That is what
// lets 10^6–10^7 modeled hosts fit in one address space. Logical
// outcomes (arrivals, renewals, denials, churn, the event-trace hash)
// are still a pure function of the seeded configuration; only
// wall-clock latency and RSS vary run to run.

// PopulationConfig sizes a population run: modeled hosts, virtual
// ticks, workers, seed, and the workload law (diurnal intensity, Zipf
// popularity, heavy-tailed flow durations and sizes, EphID lifetime and
// pool, churn, complaint cadence).
type PopulationConfig = population.Config

// PopulationResult is the run report: per-stage counters (issuance,
// renewals and denials, pool hits, churn, GC reclaim, complaints,
// digests), latency reservoirs, events/sec and peak RSS.
type PopulationResult = population.Result

// PopulationOpStats summarizes one control-plane operation's latency
// distribution within a population run.
type PopulationOpStats = population.OpStats

// DefaultPopulationConfig returns the standard configuration: 10^4
// hosts over a compressed 60-tick diurnal day.
func DefaultPopulationConfig() PopulationConfig { return population.DefaultConfig() }

// Population synthesizes a seeded host population and pushes its
// workload through a fresh AS control plane:
//
//	res, _ := apna.Population(apna.DefaultPopulationConfig())
//	fmt.Printf("%.0f events/s, issuance p99 %.0fµs\n",
//		res.EventsPerSec, res.IssueLatency.P99us)
func Population(cfg PopulationConfig) (*PopulationResult, error) {
	return population.Run(cfg)
}
