package apna

import "testing"

// TestPopulationFacade drives a tiny population run through the public
// entry point and checks the scale metrics surface there.
func TestPopulationFacade(t *testing.T) {
	cfg := DefaultPopulationConfig()
	cfg.Hosts = 400
	cfg.Ticks = 20
	cfg.Workers = 2
	cfg.EphIDLifetime = 6
	cfg.RenewLead = 1
	cfg.PeakSessionsPerHost = 0.05
	res, err := Population(cfg)
	if err != nil {
		t.Fatalf("Population: %v", err)
	}
	if res.ErrNoEphID != 0 {
		t.Errorf("ErrNoEphID = %d, want 0", res.ErrNoEphID)
	}
	if res.Issued == 0 || res.Renewals == 0 {
		t.Errorf("control plane idle: %d issued, %d renewals", res.Issued, res.Renewals)
	}
	if res.EventsPerSec <= 0 || res.PeakRSSBytes == 0 {
		t.Errorf("scale metrics missing: %.0f events/s, %d RSS bytes",
			res.EventsPerSec, res.PeakRSSBytes)
	}
}
