package apna

import (
	"fmt"

	"apna/internal/cert"
	"apna/internal/dns"
	"apna/internal/host"
)

// Inter-domain name resolution (Section VII-A surface). Each AS runs an
// authoritative zone under its own apex ("as<AID>"); cross-AS names are
// reached by following a signed referral from the local resolver to the
// owning AS's resolver. LookupAsync walks that chain with a fresh
// per-flow EphID for every hop — reusing one EphID toward two resolvers
// would let them link the host's queries (Section VIII-A) — verifies
// every record, denial and referral signature, and maintains a verified
// positive/negative cache so repeated lookups stay local.

// DNSStats counts a host's resolver activity (LookupAsync only;
// ResolveAsync predates the cache and bypasses it).
type DNSStats struct {
	// Queries counts network queries actually sent (one per hop).
	Queries uint64 `json:"queries"`
	// CacheHits and NegCacheHits count lookups answered from the
	// verified cache without touching the network.
	CacheHits    uint64 `json:"cache_hits"`
	NegCacheHits uint64 `json:"neg_cache_hits"`
	// Referrals counts verified delegations followed.
	Referrals uint64 `json:"referrals"`
	// Denials counts verified negative responses accepted.
	Denials uint64 `json:"denials"`
}

// DNSStats returns a snapshot of the host's resolver counters.
func (h *Host) DNSStats() DNSStats { return h.dnsStats }

// dnsLookupLifetime is the lifetime of the per-hop EphIDs LookupAsync
// issues (the default session lifetime).
const dnsLookupLifetime = 900

// PublishLocal registers name -> certificate in the host's own AS zone.
// The name must fall under the AS apex ("as<AID>"); other ASes resolve
// it through the referral chain.
func (h *Host) PublishLocal(name string, c *cert.Cert) error {
	_, err := h.as.Zone.Register(name, c, int64(c.ExpTime))
	return err
}

// verifyZoneSig runs a signature check against the keys this host
// trusts a priori: its own AS zone's key and the root zone's key (both
// pinned at bootstrap).
func (h *Host) verifyZoneSig(verify func(zonePub []byte, nowUnix int64) error) error {
	now := h.as.in.Sim.NowUnix()
	err := verify(h.as.Zone.PublicKey(), now)
	if err == nil {
		return nil
	}
	if rootErr := verify(h.as.in.Zone.PublicKey(), now); rootErr == nil {
		return nil
	}
	return err
}

// lookup tracks one in-flight chained resolution.
type lookup struct {
	h    *Host
	name string
	p    *Pending[*cert.Cert]
	// teardown undoes the current hop's network state (dial record,
	// response tap) if the timeline drains before it resolves.
	teardown func()
}

// LookupAsync resolves name through the inter-domain chain without
// driving the simulator: cache, then the local AS resolver, then (on a
// verified referral) the owning AS's resolver. The future resolves with
// the verified certificate, or dns.ErrNXDomain on a verified denial.
// Every hop dials with a freshly issued per-flow EphID.
func (h *Host) LookupAsync(name string) *Pending[*cert.Cert] {
	now := h.as.in.Sim.NowUnix()
	if crt, ok := h.dnsCache.Record(name, now); ok {
		h.dnsStats.CacheHits++
		p := newPending[*cert.Cert]()
		p.complete(crt, nil)
		return p
	}
	if h.dnsCache.Denied(name, now) {
		h.dnsStats.NegCacheHits++
		return failedPending[*cert.Cert](dns.ErrNXDomain)
	}
	lk := &lookup{h: h, name: name, p: newPending[*cert.Cert]()}
	lk.p.onIdleAbandon = func() {
		if lk.teardown != nil {
			lk.teardown()
		}
	}
	dnsCert := h.Stack.Config().DNSCert
	// The first hop trusts the keys pinned at bootstrap: the local AS
	// zone and the root zone.
	lk.hop(&dnsCert, [][]byte{h.as.Zone.PublicKey(), h.as.in.Zone.PublicKey()}, true)
	h.as.in.registerLive(lk.p)
	return lk.p
}

// Lookup synchronously resolves name through the inter-domain chain,
// driving the simulator until the verified answer arrives.
func (h *Host) Lookup(name string) (*cert.Cert, error) {
	return AwaitResult(h.as.in, h.LookupAsync(name))
}

// hop issues a fresh EphID, dials the given resolver, sends the query
// and handles the verified response. zoneKeys are the keys answers from
// this hop may verify under; followReferral permits one delegation.
func (lk *lookup) hop(server *cert.Cert, zoneKeys [][]byte, followReferral bool) {
	h := lk.h
	err := h.Stack.RequestEphID(KindData, dnsLookupLifetime, func(id *host.OwnedEphID, err error) {
		if err != nil {
			lk.p.complete(nil, fmt.Errorf("apna: lookup EphID: %w", err))
			return
		}
		lk.dial(id, server, zoneKeys, followReferral)
	})
	if err != nil {
		lk.p.complete(nil, err)
	}
}

// dial runs one query exchange on a freshly issued EphID.
func (lk *lookup) dial(id *host.OwnedEphID, server *cert.Cert, zoneKeys [][]byte, followReferral bool) {
	h := lk.h
	q, err := dns.EncodeQuery(lk.name)
	if err != nil {
		lk.p.complete(nil, err)
		return
	}
	var conn *host.Conn
	conn, err = h.Stack.Dial(id, server, host.DialOptions{
		OnEstablish: func(c *host.Conn) {
			h.Stack.TapFlow(id.Cert.EphID, c.Peer(), func(m host.Message) bool {
				lk.teardown = nil
				lk.answer(m.Payload, zoneKeys, followReferral)
				return false
			})
		},
	})
	if err != nil {
		lk.p.complete(nil, fmt.Errorf("apna: dialing resolver: %w", err))
		return
	}
	if err := conn.Send(q); err != nil {
		lk.p.complete(nil, err)
		return
	}
	h.dnsStats.Queries++
	lk.teardown = func() {
		h.Stack.AbortDial(conn)
		h.Stack.Untap(id.Cert.EphID, conn.Peer())
	}
}

// answer handles one hop's response.
func (lk *lookup) answer(payload []byte, zoneKeys [][]byte, followReferral bool) {
	h := lk.h
	now := h.as.in.Sim.NowUnix()
	verifyAny := func(verify func(zonePub []byte, nowUnix int64) error) error {
		var err error
		for _, key := range zoneKeys {
			if err = verify(key, now); err == nil {
				return nil
			}
		}
		return err
	}

	resp, err := dns.ParseResponse(payload)
	if err != nil {
		lk.p.complete(nil, err)
		return
	}
	switch resp.Status {
	case dns.StatusOK:
		rec := resp.Record
		if rec.Name != lk.name {
			lk.p.complete(nil, fmt.Errorf("apna: resolver answered %q for query %q", rec.Name, lk.name))
			return
		}
		if err := verifyAny(rec.Verify); err != nil {
			lk.p.complete(nil, err)
			return
		}
		h.dnsCache.PutRecord(lk.name, &rec.Cert, rec.NotAfter)
		lk.p.complete(&rec.Cert, nil)
	case dns.StatusNXDomain:
		d := resp.Denial
		if d == nil || d.Name != lk.name || verifyAny(d.Verify) != nil {
			lk.p.complete(nil, fmt.Errorf("apna: unauthenticated denial for %q: %w", lk.name, dns.ErrBadDenial))
			return
		}
		h.dnsStats.Denials++
		h.dnsCache.PutDenial(lk.name, d.NotAfter)
		lk.p.complete(nil, dns.ErrNXDomain)
	case dns.StatusReferral:
		ref := resp.Referral
		if !followReferral {
			lk.p.complete(nil, fmt.Errorf("apna: referral chain too deep resolving %q", lk.name))
			return
		}
		if err := verifyAny(ref.Verify); err != nil {
			lk.p.complete(nil, err)
			return
		}
		h.dnsStats.Referrals++
		// The delegated hop's answers verify only under the referred
		// zone's key, anchored by the signature just checked.
		lk.hop(&ref.DNSCert, [][]byte{ref.ZoneKey}, false)
	default:
		lk.p.complete(nil, dns.ErrBadMessage)
	}
}
