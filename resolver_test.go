package apna

import (
	"errors"
	"testing"
	"time"

	"apna/internal/dns"
	"apna/internal/ephid"
	"apna/internal/netsim"
	"apna/internal/wire"
)

// buildDNSPair stands up two linked ASes with one host each and a
// service published in AS 200's zone by bob.
func buildDNSPair(t *testing.T) (in *Internet, alice, bob *Host) {
	t.Helper()
	var err error
	in, err = New(1,
		WithAS(100, "alice"),
		WithAS(200, "bob"),
		WithLink(100, 200, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	alice, bob = in.Host("alice"), in.Host("bob")
	svc, err := bob.NewEphID(ephid.KindReceiveOnly, 24*3600)
	if err != nil {
		t.Fatal(err)
	}
	// A serving EphID: connections to the published receive-only EphID
	// migrate to it (Section VII-A).
	if _, err := bob.NewEphID(ephid.KindData, 24*3600); err != nil {
		t.Fatal(err)
	}
	if err := bob.PublishLocal("svc.as200", &svc.Cert); err != nil {
		t.Fatal(err)
	}
	return in, alice, bob
}

func TestLookupCrossASViaReferral(t *testing.T) {
	in, alice, _ := buildDNSPair(t)

	crt, err := alice.Lookup("svc.as200")
	if err != nil {
		t.Fatalf("cross-AS lookup: %v", err)
	}
	if crt.AID != 200 {
		t.Fatalf("resolved cert names AS %v, want 200", crt.AID)
	}
	st := alice.DNSStats()
	if st.Referrals != 1 {
		t.Fatalf("referrals = %d, want 1 (local resolver delegates as200)", st.Referrals)
	}
	if st.Queries != 2 {
		t.Fatalf("queries = %d, want 2 (local hop + delegated hop)", st.Queries)
	}

	// Second lookup: answered from the verified cache, zero network.
	ev := in.Sim.Events()
	crt2, err := alice.Lookup("svc.as200")
	if err != nil {
		t.Fatal(err)
	}
	if *crt2 != *crt {
		t.Fatal("cache returned a different certificate")
	}
	st = alice.DNSStats()
	if st.CacheHits != 1 || st.Queries != 2 {
		t.Fatalf("cache hit not recorded: %+v", st)
	}
	if in.Sim.Events() != ev {
		t.Fatal("cache hit touched the network")
	}

	// The cross-AS cert is dialable: end-to-end resolve-then-connect.
	id, err := alice.NewEphID(ephid.KindData, 900)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Connect(id, crt, nil); err != nil {
		t.Fatalf("dialing resolved cert: %v", err)
	}
}

func TestLookupLocalZone(t *testing.T) {
	_, _, bob := buildDNSPair(t)
	crt, err := bob.Lookup("svc.as200")
	if err != nil {
		t.Fatalf("local-zone lookup: %v", err)
	}
	if crt.AID != 200 {
		t.Fatalf("AID = %v", crt.AID)
	}
	st := bob.DNSStats()
	if st.Referrals != 0 || st.Queries != 1 {
		t.Fatalf("local lookup took the wrong path: %+v", st)
	}
}

func TestLookupVerifiedDenialAndNegativeCache(t *testing.T) {
	in, alice, _ := buildDNSPair(t)
	if _, err := alice.Lookup("missing.as100"); !errors.Is(err, dns.ErrNXDomain) {
		t.Fatalf("err = %v, want ErrNXDomain", err)
	}
	st := alice.DNSStats()
	if st.Denials != 1 {
		t.Fatalf("denials = %d, want 1 (signed negative response)", st.Denials)
	}

	// Negative cache: the repeat is answered locally, still NXDOMAIN.
	ev := in.Sim.Events()
	if _, err := alice.Lookup("missing.as100"); !errors.Is(err, dns.ErrNXDomain) {
		t.Fatalf("repeat err = %v", err)
	}
	st = alice.DNSStats()
	if st.NegCacheHits != 1 {
		t.Fatalf("neg cache hits = %d: %+v", st.NegCacheHits, st)
	}
	if in.Sim.Events() != ev {
		t.Fatal("negative cache hit touched the network")
	}

	// The denial expires (DefaultDenialTTL); after that the resolver
	// asks the network again.
	in.RunFor(time.Duration(dns.DefaultDenialTTL+1) * time.Second)
	if _, err := alice.Lookup("missing.as100"); !errors.Is(err, dns.ErrNXDomain) {
		t.Fatalf("post-expiry err = %v", err)
	}
	if got := alice.DNSStats(); got.Denials != 2 {
		t.Fatalf("expired denial not re-fetched: %+v", got)
	}
}

func TestLookupCrossASDenial(t *testing.T) {
	_, alice, _ := buildDNSPair(t)
	// The name is under as200's apex but not registered: the referral is
	// followed and the *remote* zone's signed denial is verified against
	// the referred key.
	if _, err := alice.Lookup("ghost.as200"); !errors.Is(err, dns.ErrNXDomain) {
		t.Fatalf("err = %v, want ErrNXDomain", err)
	}
	st := alice.DNSStats()
	if st.Referrals != 1 || st.Denials != 1 {
		t.Fatalf("cross-AS denial path: %+v", st)
	}
}

func TestLookupFreshEphIDPerHop(t *testing.T) {
	// Flow unlinkability (Section VIII-A): the EphIDs used toward the
	// local and remote resolvers must differ from each other and from
	// the host's control EphID. Observe alice's access link and bucket
	// query sources by the resolver endpoint they address.
	in, alice, _ := buildDNSPair(t)
	_, dns100, _ := in.AS(100).ServiceEndpoints()
	_, dns200, _ := in.AS(200).ServiceEndpoints()
	srcsToward := map[Endpoint]map[EphID]bool{}
	alice.link.AddTap(func(frame []byte, _ *netsim.Port) {
		var hdr wire.Header
		if err := hdr.DecodeFromBytes(frame); err != nil {
			return
		}
		dst := Endpoint{AID: hdr.DstAID, EphID: hdr.DstEphID}
		if dst != dns100 && dst != dns200 {
			return
		}
		if srcsToward[dst] == nil {
			srcsToward[dst] = map[EphID]bool{}
		}
		srcsToward[dst][hdr.SrcEphID] = true
	})
	if _, err := alice.Lookup("svc.as200"); err != nil {
		t.Fatal(err)
	}
	if len(srcsToward[dns100]) != 1 || len(srcsToward[dns200]) != 1 {
		t.Fatalf("expected one source EphID per resolver hop, got %v", srcsToward)
	}
	ctrl := alice.Stack.Config().CtrlEphID
	var hop1, hop2 EphID
	for e := range srcsToward[dns100] {
		hop1 = e
	}
	for e := range srcsToward[dns200] {
		hop2 = e
	}
	if hop1 == hop2 {
		t.Fatal("resolver reused one EphID across hops — queries are linkable")
	}
	if hop1 == ctrl || hop2 == ctrl {
		t.Fatal("resolver used the control EphID for queries")
	}
}

func TestPublishLocalRejectsForeignName(t *testing.T) {
	_, alice, _ := buildDNSPair(t)
	id, err := alice.NewEphID(ephid.KindReceiveOnly, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.PublishLocal("svc.as200", &id.Cert); !errors.Is(err, dns.ErrNotAuthoritative) {
		t.Fatalf("foreign publish: err = %v", err)
	}
	if err := alice.PublishLocal("svc.as100", &id.Cert); err != nil {
		t.Fatalf("local publish: %v", err)
	}
}
