package apna

import (
	"apna/internal/engine"
)

// Throughput wiring: the facade's entry point to the parallel
// forwarding engine (experiment E8). Unlike every other facade API,
// throughput runs do NOT go through the deterministic event simulator —
// they drive per-worker border-router pipelines on real cores, because
// packets-per-second is a property of the hardware, not of virtual
// time. The conformance experiments (E6, E7) stay on the simulator;
// this is the repo's analogue of the paper's split between protocol
// evaluation and the DPDK testbed (Section V-B).

// ThroughputConfig sizes a data-plane saturation run: AS count, host
// population, frame size, worker (core) count, batch size, adversarial
// traffic fraction.
type ThroughputConfig = engine.SaturationConfig

// ThroughputResult is the saturation report: pps, delivered Gbps,
// per-stage latency percentiles and drop-verdict counts, serializable
// as the BENCH_e8.json artifact via its JSON method.
type ThroughputResult = engine.SaturationResult

// ThroughputStageStats summarizes one pipeline stage's per-packet
// latency distribution.
type ThroughputStageStats = engine.StageStats

// DefaultThroughputConfig returns the standard E8 configuration
// (4-AS ring, 64 hosts/AS, 256-byte frames, one worker per core).
func DefaultThroughputConfig() ThroughputConfig { return engine.DefaultSaturation() }

// Throughput saturates a multi-AS data plane with the parallel
// forwarding engine and reports the measurement:
//
//	res, _ := apna.Throughput(apna.DefaultThroughputConfig())
//	fmt.Printf("%.2f Mpps\n", res.Report.PPS/1e6)
func Throughput(cfg ThroughputConfig) (*ThroughputResult, error) {
	return engine.Saturate(cfg)
}
