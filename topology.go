package apna

import (
	"errors"
	"fmt"
	"time"
)

// Topology is a declarative description of an internet: ASes, inter-AS
// links and hosts. It validates up front and builds in one shot,
// replacing the imperative NewInternet → AddAS → Connect → Build →
// AddHost sequence. Construct one with NewTopology and the chainable
// methods, or — more commonly — through New with functional options:
//
//	in, err := apna.New(seed,
//		apna.WithAS(100, "alice"),
//		apna.WithAS(200, "bob", "carol"),
//		apna.WithLink(100, 200, 20*time.Millisecond))
//
// Generators produce whole shapes at once: WithLine, WithStar and
// WithFullMesh lay out N-AS line, star and full-mesh topologies.
type Topology struct {
	opts      Options
	hasOpts   bool
	ases      []topoAS
	links     []topoLink
	attackers []topoAttacker
	chaos     *ChaosConfig
	lifetimes *Lifetimes
	dissem    *Dissemination
	errs      []error
}

type topoAS struct {
	aid   AID
	hosts []string
}

type topoLink struct {
	a, b    AID
	latency time.Duration
}

type topoAttacker struct {
	aid  AID
	name string
}

// ErrBadTopology wraps every topology validation failure.
var ErrBadTopology = errors.New("apna: invalid topology")

// TopologyOption mutates a Topology under construction.
type TopologyOption func(*Topology)

// New builds a ready internet from a declarative topology: every AS
// stood up, links connected, routes computed, hosts bootstrapped.
// Validation happens before any construction, so a bad topology costs
// nothing.
func New(seed int64, topo ...TopologyOption) (*Internet, error) {
	t := NewTopology()
	for _, o := range topo {
		o(t)
	}
	return t.Build(seed)
}

// WithOptions sets the simulation options (latencies, strike limit, MS
// policy).
func WithOptions(o Options) TopologyOption {
	return func(t *Topology) { t.Options(o) }
}

// WithAS adds an AS and, optionally, named hosts attached to it.
func WithAS(aid AID, hosts ...string) TopologyOption {
	return func(t *Topology) { t.AS(aid, hosts...) }
}

// WithLink connects two ASes' border routers with the given one-way
// latency. Both ASes must be declared (by WithAS or a generator).
func WithLink(a, b AID, latency time.Duration) TopologyOption {
	return func(t *Topology) { t.Link(a, b, latency) }
}

// WithHosts attaches named hosts to an already-declared AS.
func WithHosts(aid AID, names ...string) TopologyOption {
	return func(t *Topology) { t.Hosts(aid, names...) }
}

// WithLine generates a line topology of n ASes numbered first,
// first+1, ..., chained by links of the given latency.
func WithLine(first AID, n int, latency time.Duration) TopologyOption {
	return func(t *Topology) { t.Line(first, n, latency) }
}

// WithStar generates a star topology: a center AS plus `leaves` leaf
// ASes numbered center+1, ..., each linked to the center.
func WithStar(center AID, leaves int, latency time.Duration) TopologyOption {
	return func(t *Topology) { t.Star(center, leaves, latency) }
}

// WithFullMesh generates a full mesh of n ASes numbered first,
// first+1, ..., with a direct link between every pair.
func WithFullMesh(first AID, n int, latency time.Duration) TopologyOption {
	return func(t *Topology) { t.FullMesh(first, n, latency) }
}

// WithASGraph generates a provider/customer AS hierarchy (the internet
// shape the paper assumes digests propagate across): a fully meshed
// tier-1 core, mid-tier transit ASes multi-homed to core providers, and
// stub leaf ASes multi-homed to mid providers. ASes are numbered first,
// first+1, ... core-first; provider assignment is deterministic
// round-robin, so the same config always yields the same graph.
func WithASGraph(first AID, g ASGraphConfig) TopologyOption {
	return func(t *Topology) { t.ASGraph(first, g) }
}

// WithChaos applies a chaos configuration (jitter, duplication,
// reordering, loss, timed partitions) to every inter-AS link of the
// built internet. Intra-AS links stay clean — the adversary sits on
// the open internet, not inside AS infrastructure.
func WithChaos(cfg ChaosConfig) TopologyOption {
	return func(t *Topology) { t.Chaos(cfg) }
}

// WithAttacker attaches a named attacker to an AS (which must be
// declared). Retrieve it after Build with Internet.Attacker(name).
func WithAttacker(aid AID, name string) TopologyOption {
	return func(t *Topology) { t.Attacker(aid, name) }
}

// WithLifetimes starts the EphID lifecycle engine on the built
// internet: host pools are watched on lt.CheckInterval, identifiers
// entering the renewal lead window are renewed through the MS's
// rate-limited renewal path with live flows migrated to the successor,
// and revocation-list plus host_info GC runs on lt.GCInterval. Zero
// fields take DefaultLifetimes values.
func WithLifetimes(lt Lifetimes) TopologyOption {
	return func(t *Topology) { t.Lifetimes(lt) }
}

// WithAccountability starts revocation-digest dissemination on the
// built internet: every interval of virtual time each AS's
// accountability engine flushes a signed digest of its live revocations
// (a delta of the churn since the last flush, periodically a full
// anti-entropy snapshot) to every peer agent, so border routers across
// the whole internet drop frames from remotely-revoked EphIDs. A
// non-positive interval selects DefaultDigestInterval. Complaints
// (Host.Complain) work without this option; only internet-wide
// dissemination needs the timer. WithDissemination exposes the full
// configuration (relay mode, snapshot cadence).
func WithAccountability(digestInterval time.Duration) TopologyOption {
	return func(t *Topology) { t.Accountability(digestInterval) }
}

// WithDissemination starts revocation-digest dissemination with an
// explicit configuration: interval, mode (mesh flooding or the
// bounded-fan-out relay overlay along physical links) and anti-entropy
// snapshot cadence. Zero fields take defaults.
func WithDissemination(d Dissemination) TopologyOption {
	return func(t *Topology) { t.Dissemination(d) }
}

// NewTopology returns an empty topology for the chainable method API;
// most callers use New with options instead.
func NewTopology() *Topology { return &Topology{} }

// Options sets the simulation options.
func (t *Topology) Options(o Options) *Topology {
	t.opts, t.hasOpts = o, true
	return t
}

// AS declares an AS with optional named hosts.
func (t *Topology) AS(aid AID, hosts ...string) *Topology {
	t.ases = append(t.ases, topoAS{aid: aid, hosts: hosts})
	return t
}

// Link declares a link between two declared ASes.
func (t *Topology) Link(a, b AID, latency time.Duration) *Topology {
	t.links = append(t.links, topoLink{a: a, b: b, latency: latency})
	return t
}

// Chaos stores the inter-AS chaos configuration.
func (t *Topology) Chaos(cfg ChaosConfig) *Topology {
	t.chaos = &cfg
	return t
}

// Attacker declares a named attacker attached to an AS.
func (t *Topology) Attacker(aid AID, name string) *Topology {
	t.attackers = append(t.attackers, topoAttacker{aid: aid, name: name})
	return t
}

// Lifetimes stores the lifecycle-engine configuration.
func (t *Topology) Lifetimes(lt Lifetimes) *Topology {
	t.lifetimes = &lt
	return t
}

// Accountability stores the revocation-digest dissemination cadence
// with default mode and snapshot cadence.
func (t *Topology) Accountability(digestInterval time.Duration) *Topology {
	return t.Dissemination(Dissemination{Interval: digestInterval})
}

// Dissemination stores the full revocation-digest dissemination
// configuration.
func (t *Topology) Dissemination(d Dissemination) *Topology {
	t.dissem = &d
	return t
}

// Hosts attaches named hosts to a declared AS.
func (t *Topology) Hosts(aid AID, names ...string) *Topology {
	for i := range t.ases {
		if t.ases[i].aid == aid {
			t.ases[i].hosts = append(t.ases[i].hosts, names...)
			return t
		}
	}
	t.errs = append(t.errs, fmt.Errorf("%w: hosts %v on undeclared AS %v", ErrBadTopology, names, aid))
	return t
}

// Line appends a line of n ASes chained by links.
func (t *Topology) Line(first AID, n int, latency time.Duration) *Topology {
	if n < 1 {
		t.errs = append(t.errs, fmt.Errorf("%w: line of %d ASes", ErrBadTopology, n))
		return t
	}
	for i := 0; i < n; i++ {
		t.AS(first + AID(i))
		if i > 0 {
			t.Link(first+AID(i-1), first+AID(i), latency)
		}
	}
	return t
}

// Star appends a center AS and `leaves` leaf ASes linked to it.
func (t *Topology) Star(center AID, leaves int, latency time.Duration) *Topology {
	if leaves < 1 {
		t.errs = append(t.errs, fmt.Errorf("%w: star with %d leaves", ErrBadTopology, leaves))
		return t
	}
	t.AS(center)
	for i := 1; i <= leaves; i++ {
		t.AS(center + AID(i))
		t.Link(center, center+AID(i), latency)
	}
	return t
}

// FullMesh appends n ASes with a link between every pair.
func (t *Topology) FullMesh(first AID, n int, latency time.Duration) *Topology {
	if n < 1 {
		t.errs = append(t.errs, fmt.Errorf("%w: mesh of %d ASes", ErrBadTopology, n))
		return t
	}
	for i := 0; i < n; i++ {
		t.AS(first + AID(i))
		for j := 0; j < i; j++ {
			t.Link(first+AID(j), first+AID(i), latency)
		}
	}
	return t
}

// ASGraphConfig sizes a provider/customer AS hierarchy for the ASGraph
// generator: Core tier-1 ASes in a full mesh, Mid transit ASes each
// buying from ProvidersPerAS core providers, and Stubs leaf ASes each
// buying from ProvidersPerAS mid providers. Total ASes =
// Core + Mid + Stubs; maximum overlay depth is 4 hops
// (stub → mid → core → mid → stub), so relay dissemination latency is
// bounded by 4 digest intervals regardless of scale.
type ASGraphConfig struct {
	// Core is the number of fully meshed tier-1 ASes (>= 1).
	Core int
	// Mid is the number of mid-tier transit ASes.
	Mid int
	// Stubs is the number of stub leaf ASes (requires Mid >= 1).
	Stubs int
	// ProvidersPerAS is how many providers each non-core AS links to
	// (multi-homing degree; non-positive selects 2, clamped to the size
	// of the tier above).
	ProvidersPerAS int
	// CoreLatency is the one-way latency of core-core links.
	CoreLatency time.Duration
	// Latency is the one-way latency of provider-customer links.
	Latency time.Duration
}

// ASGraph appends a provider/customer hierarchy: a Core-AS full mesh at
// first, Mid transit ASes at first+Core, Stubs leaves at
// first+Core+Mid. Provider assignment is deterministic round-robin
// (customer i's j-th provider is tier-above AS (i*P+j) mod tier size),
// spreading customers evenly while keeping the graph reproducible.
func (t *Topology) ASGraph(first AID, g ASGraphConfig) *Topology {
	if g.Core < 1 || g.Mid < 0 || g.Stubs < 0 || (g.Stubs > 0 && g.Mid < 1) {
		t.errs = append(t.errs, fmt.Errorf("%w: AS graph core=%d mid=%d stubs=%d",
			ErrBadTopology, g.Core, g.Mid, g.Stubs))
		return t
	}
	p := g.ProvidersPerAS
	if p <= 0 {
		p = 2
	}
	t.FullMesh(first, g.Core, g.CoreLatency)
	attach := func(aid AID, i, providers int, tierFirst AID, tierSize int) {
		t.AS(aid)
		if providers > tierSize {
			providers = tierSize
		}
		for j := 0; j < providers; j++ {
			t.Link(tierFirst+AID((i*providers+j)%tierSize), aid, g.Latency)
		}
	}
	midFirst := first + AID(g.Core)
	for i := 0; i < g.Mid; i++ {
		attach(midFirst+AID(i), i, p, first, g.Core)
	}
	stubFirst := midFirst + AID(g.Mid)
	for i := 0; i < g.Stubs; i++ {
		attach(stubFirst+AID(i), i, p, midFirst, g.Mid)
	}
	return t
}

// Validate checks the whole description: generator arguments, duplicate
// ASes, links between undeclared or identical ASes, negative latencies
// and duplicate host names.
func (t *Topology) Validate() error {
	if len(t.errs) > 0 {
		return t.errs[0]
	}
	ases := make(map[AID]bool, len(t.ases))
	hostNames := make(map[string]bool)
	for _, as := range t.ases {
		if ases[as.aid] {
			return fmt.Errorf("%w: %v declared twice", ErrBadTopology, as.aid)
		}
		ases[as.aid] = true
		for _, name := range as.hosts {
			if name == "" {
				return fmt.Errorf("%w: empty host name on AS %v", ErrBadTopology, as.aid)
			}
			if hostNames[name] {
				return fmt.Errorf("%w: host %q declared twice", ErrBadTopology, name)
			}
			hostNames[name] = true
		}
	}
	type pair struct{ lo, hi AID }
	seen := make(map[pair]bool, len(t.links))
	for _, l := range t.links {
		if l.a == l.b {
			return fmt.Errorf("%w: self-link on AS %v", ErrBadTopology, l.a)
		}
		if !ases[l.a] || !ases[l.b] {
			return fmt.Errorf("%w: link %v-%v references undeclared AS", ErrBadTopology, l.a, l.b)
		}
		if l.latency < 0 {
			return fmt.Errorf("%w: negative latency on link %v-%v", ErrBadTopology, l.a, l.b)
		}
		k := pair{l.a, l.b}
		if l.b < l.a {
			k = pair{l.b, l.a}
		}
		if seen[k] {
			return fmt.Errorf("%w: link %v-%v declared twice", ErrBadTopology, l.a, l.b)
		}
		seen[k] = true
	}
	attackers := make(map[string]bool, len(t.attackers))
	for _, a := range t.attackers {
		if a.name == "" {
			return fmt.Errorf("%w: empty attacker name on AS %v", ErrBadTopology, a.aid)
		}
		if !ases[a.aid] {
			return fmt.Errorf("%w: attacker %q on undeclared AS %v", ErrBadTopology, a.name, a.aid)
		}
		if attackers[a.name] {
			return fmt.Errorf("%w: attacker %q declared twice", ErrBadTopology, a.name)
		}
		attackers[a.name] = true
	}
	if t.chaos != nil {
		for _, p := range []float64{t.chaos.Loss, t.chaos.DupProb, t.chaos.ReorderProb} {
			if p < 0 || p > 1 {
				return fmt.Errorf("%w: chaos probability %v outside [0,1]", ErrBadTopology, p)
			}
		}
		if t.chaos.Jitter < 0 || t.chaos.ReorderDelay < 0 {
			return fmt.Errorf("%w: negative chaos delay", ErrBadTopology)
		}
		for _, iv := range t.chaos.Partitions {
			if iv.From < 0 || iv.Until <= iv.From {
				return fmt.Errorf("%w: partition window [%v,%v) is empty or negative",
					ErrBadTopology, iv.From, iv.Until)
			}
		}
	}
	if lt := t.lifetimes; lt != nil {
		for _, d := range []time.Duration{lt.RenewLead, lt.CheckInterval, lt.GCInterval,
			lt.MigrateRetry, lt.RevokedRetention} {
			if d < 0 {
				return fmt.Errorf("%w: negative lifecycle duration %v", ErrBadTopology, d)
			}
		}
	}
	return nil
}

// Build validates the topology and constructs the internet: ASes with
// fresh keys and services, links, inter-domain routes, and bootstrapped
// hosts, ready for traffic.
func (t *Topology) Build(seed int64) (*Internet, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	opts := t.opts
	if !t.hasOpts {
		opts = DefaultOptions()
	}
	in, err := NewInternetWithOptions(seed, opts)
	if err != nil {
		return nil, err
	}
	for _, as := range t.ases {
		if _, err := in.AddAS(as.aid); err != nil {
			return nil, err
		}
	}
	for _, l := range t.links {
		if err := in.Connect(l.a, l.b, l.latency); err != nil {
			return nil, err
		}
	}
	if err := in.Build(); err != nil {
		return nil, err
	}
	if t.chaos != nil {
		in.SetInterASChaos(*t.chaos)
	}
	for _, as := range t.ases {
		for _, name := range as.hosts {
			if _, err := in.AddHost(as.aid, name); err != nil {
				return nil, err
			}
		}
	}
	for _, a := range t.attackers {
		if _, err := in.AddAttacker(a.aid, a.name); err != nil {
			return nil, err
		}
	}
	if t.lifetimes != nil {
		in.StartLifecycle(*t.lifetimes)
	}
	if t.dissem != nil {
		in.ConfigureDissemination(*t.dissem)
	}
	return in, nil
}
