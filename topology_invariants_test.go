package apna

import (
	"errors"
	"testing"
	"time"

	"apna/internal/netsim"
)

// Table-driven invariants for the topology generators: every generated
// shape must have the expected AS and link counts, be fully connected
// with the expected diameters, and every malformed description must be
// rejected with ErrBadTopology before anything is built.

func TestTopologyGeneratorInvariants(t *testing.T) {
	const lat = 5 * time.Millisecond
	cases := []struct {
		name     string
		opts     []TopologyOption
		ases     int
		links    int
		diameter int // max AS-hop distance between any pair
	}{
		{"line-1", []TopologyOption{WithLine(10, 1, lat)}, 1, 0, 0},
		{"line-2", []TopologyOption{WithLine(10, 2, lat)}, 2, 1, 1},
		{"line-5", []TopologyOption{WithLine(10, 5, lat)}, 5, 4, 4},
		{"star-1", []TopologyOption{WithStar(100, 1, lat)}, 2, 1, 1},
		{"star-5", []TopologyOption{WithStar(100, 5, lat)}, 6, 5, 2},
		{"mesh-1", []TopologyOption{WithFullMesh(200, 1, lat)}, 1, 0, 0},
		{"mesh-2", []TopologyOption{WithFullMesh(200, 2, lat)}, 2, 1, 1},
		{"mesh-4", []TopologyOption{WithFullMesh(200, 4, lat)}, 4, 6, 1},
		{"mesh-6", []TopologyOption{WithFullMesh(200, 6, lat)}, 6, 15, 1},
		{"composed", []TopologyOption{
			WithLine(10, 3, lat), WithStar(100, 2, lat), WithLink(12, 100, lat),
		}, 6, 5, 4}, // 10-11-12-100-{101,102}: 10 -> 101 is 4 hops
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := New(1, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(in.ases); got != tc.ases {
				t.Errorf("ASes = %d, want %d", got, tc.ases)
			}
			if got := len(in.links); got != tc.links {
				t.Errorf("links = %d, want %d", got, tc.links)
			}
			// Connectivity and diameter: every AS reaches every other
			// over the installed routes, never exceeding the expected
			// worst-case hop count.
			tables := netsim.ComputeAllRoutes(in.adjacency)
			diameter := 0
			for src := range in.ases {
				for dst := range in.ases {
					hops, err := netsim.PathLength(tables, src, dst)
					if err != nil {
						t.Fatalf("%v unreachable from %v: %v", dst, src, err)
					}
					if hops > diameter {
						diameter = hops
					}
				}
			}
			if diameter != tc.diameter {
				t.Errorf("diameter = %d, want %d", diameter, tc.diameter)
			}
		})
	}
}

func TestTopologyValidationRejects(t *testing.T) {
	const lat = time.Millisecond
	cases := []struct {
		name string
		opts []TopologyOption
	}{
		{"empty-line", []TopologyOption{WithLine(10, 0, lat)}},
		{"empty-star", []TopologyOption{WithStar(10, 0, lat)}},
		{"empty-mesh", []TopologyOption{WithFullMesh(10, 0, lat)}},
		{"duplicate-as", []TopologyOption{WithAS(1), WithAS(1)}},
		{"generator-overlap", []TopologyOption{WithLine(10, 3, lat), WithStar(11, 2, lat)}},
		{"self-link", []TopologyOption{WithAS(1), WithLink(1, 1, lat)}},
		{"undeclared-link", []TopologyOption{WithAS(1), WithLink(1, 2, lat)}},
		{"duplicate-link", []TopologyOption{WithFullMesh(10, 3, lat), WithLink(10, 11, lat)}},
		{"duplicate-link-reversed", []TopologyOption{WithAS(1), WithAS(2), WithLink(1, 2, lat), WithLink(2, 1, lat)}},
		{"negative-latency", []TopologyOption{WithAS(1), WithAS(2), WithLink(1, 2, -lat)}},
		{"empty-host-name", []TopologyOption{WithAS(1, "")}},
		{"duplicate-host", []TopologyOption{WithAS(1, "x"), WithAS(2, "x")}},
		{"hosts-on-undeclared", []TopologyOption{WithAS(1), WithHosts(2, "y")}},
		{"empty-attacker-name", []TopologyOption{WithAS(1), WithAttacker(1, "")}},
		{"attacker-on-undeclared", []TopologyOption{WithAS(1), WithAttacker(2, "m")}},
		{"duplicate-attacker", []TopologyOption{WithAS(1), WithAttacker(1, "m"), WithAttacker(1, "m")}},
		{"chaos-bad-probability", []TopologyOption{WithAS(1), WithChaos(ChaosConfig{Loss: 1.5})}},
		{"chaos-negative-jitter", []TopologyOption{WithAS(1), WithChaos(ChaosConfig{Jitter: -time.Second})}},
		{"chaos-inverted-partition", []TopologyOption{WithAS(1), WithChaos(ChaosConfig{
			Partitions: []ChaosInterval{{From: 50 * time.Millisecond, Until: 20 * time.Millisecond}}})}},
		{"chaos-negative-partition", []TopologyOption{WithAS(1), WithChaos(ChaosConfig{
			Partitions: []ChaosInterval{{From: -time.Millisecond, Until: time.Millisecond}}})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := New(1, tc.opts...)
			if !errors.Is(err, ErrBadTopology) {
				t.Errorf("err = %v, want ErrBadTopology", err)
			}
			if in != nil {
				t.Error("invalid topology returned a built internet")
			}
		})
	}
}
