package apna

import (
	"errors"
	"testing"
	"time"

	"apna/internal/ephid"
)

func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		name string
		topo []TopologyOption
	}{
		{"duplicate AS", []TopologyOption{WithAS(1), WithAS(1)}},
		{"duplicate host", []TopologyOption{WithAS(1, "x"), WithAS(2, "x"), WithLink(1, 2, 0)}},
		{"empty host name", []TopologyOption{WithAS(1, "")}},
		{"link to undeclared AS", []TopologyOption{WithAS(1), WithLink(1, 2, 0)}},
		{"self link", []TopologyOption{WithAS(1), WithLink(1, 1, 0)}},
		{"duplicate link", []TopologyOption{WithAS(1), WithAS(2), WithLink(1, 2, 0), WithLink(2, 1, time.Millisecond)}},
		{"negative latency", []TopologyOption{WithAS(1), WithAS(2), WithLink(1, 2, -time.Second)}},
		{"hosts on undeclared AS", []TopologyOption{WithAS(1), WithHosts(2, "x")}},
		{"empty line", []TopologyOption{WithLine(1, 0, 0)}},
		{"empty star", []TopologyOption{WithStar(1, 0, 0)}},
		{"empty mesh", []TopologyOption{WithFullMesh(1, -1, 0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(1, tc.topo...); !errors.Is(err, ErrBadTopology) {
				t.Errorf("New() err = %v, want ErrBadTopology", err)
			}
		})
	}
}

// TestTopologyGenerators checks that line, star and full-mesh layouts
// route end to end: the two most distant hosts of each shape complete a
// handshake and exchange data.
func TestTopologyGenerators(t *testing.T) {
	shapes := []struct {
		name        string
		topo        []TopologyOption
		src, dst    AID
		wantTransit AID // an AS that must carry transit traffic (0 = none)
	}{
		{"line", []TopologyOption{WithLine(10, 4, time.Millisecond),
			WithHosts(10, "src"), WithHosts(13, "dst")}, 10, 13, 11},
		{"star", []TopologyOption{WithStar(50, 3, time.Millisecond),
			WithHosts(51, "src"), WithHosts(53, "dst")}, 51, 53, 50},
		{"mesh", []TopologyOption{WithFullMesh(90, 4, time.Millisecond),
			WithHosts(90, "src"), WithHosts(93, "dst")}, 90, 93, 0},
	}
	for _, tc := range shapes {
		t.Run(tc.name, func(t *testing.T) {
			in, err := New(1, tc.topo...)
			if err != nil {
				t.Fatal(err)
			}
			src, dst := in.Host("src"), in.Host("dst")
			if src == nil || dst == nil {
				t.Fatal("hosts not registered")
			}
			if src.AS().AID != tc.src || dst.AS().AID != tc.dst {
				t.Fatalf("hosts on %v/%v, want %v/%v", src.AS().AID, dst.AS().AID, tc.src, tc.dst)
			}
			ps, pd := src.NewEphIDAsync(ephid.KindData, 900), dst.NewEphIDAsync(ephid.KindData, 900)
			if err := in.AwaitAll(ps, pd); err != nil {
				t.Fatal(err)
			}
			idS, _ := ps.Result()
			idD, _ := pd.Result()
			conn, err := src.Connect(idS, &idD.Cert, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := src.Send(conn, []byte("across the "+tc.name)); err != nil {
				t.Fatal(err)
			}
			if msgs := dst.Stack.Inbox(); len(msgs) != 1 {
				t.Fatalf("delivered %d messages", len(msgs))
			}
			if tc.wantTransit != 0 && in.AS(tc.wantTransit).Router.Stats().Transited.Load() == 0 {
				t.Errorf("no transit through AS %v", tc.wantTransit)
			}
			// In a full mesh every path is direct: no transit anywhere.
			if tc.name == "mesh" {
				for _, aid := range []AID{90, 91, 92, 93} {
					if n := in.AS(aid).Router.Stats().Transited.Load(); n != 0 {
						t.Errorf("mesh AS %v transited %d packets", aid, n)
					}
				}
			}
		})
	}
}

func TestTopologyChainableAPI(t *testing.T) {
	in, err := NewTopology().
		AS(1, "alice").
		AS(2).
		Hosts(2, "bob").
		Link(1, 2, 2*time.Millisecond).
		Build(42)
	if err != nil {
		t.Fatal(err)
	}
	if in.Host("alice") == nil || in.Host("bob") == nil {
		t.Fatal("hosts missing")
	}
	if got := len(in.Hosts()); got != 2 {
		t.Fatalf("Hosts() = %d", got)
	}
	if _, err := in.AddHost(1, "alice"); !errors.Is(err, ErrDuplicateHost) {
		t.Errorf("duplicate AddHost err = %v", err)
	}
}

func TestWithOptionsReachesSimulation(t *testing.T) {
	opts := DefaultOptions()
	opts.StrikeLimit = 1
	in, err := New(1, WithOptions(opts), WithAS(1, "a"), WithAS(2, "b"),
		WithLink(1, 2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if in.opts.StrikeLimit != 1 {
		t.Errorf("StrikeLimit = %d", in.opts.StrikeLimit)
	}
}
