package apna

import (
	"errors"
	"testing"
	"time"

	"apna/internal/ephid"
)

func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		name string
		topo []TopologyOption
	}{
		{"duplicate AS", []TopologyOption{WithAS(1), WithAS(1)}},
		{"duplicate host", []TopologyOption{WithAS(1, "x"), WithAS(2, "x"), WithLink(1, 2, 0)}},
		{"empty host name", []TopologyOption{WithAS(1, "")}},
		{"link to undeclared AS", []TopologyOption{WithAS(1), WithLink(1, 2, 0)}},
		{"self link", []TopologyOption{WithAS(1), WithLink(1, 1, 0)}},
		{"duplicate link", []TopologyOption{WithAS(1), WithAS(2), WithLink(1, 2, 0), WithLink(2, 1, time.Millisecond)}},
		{"negative latency", []TopologyOption{WithAS(1), WithAS(2), WithLink(1, 2, -time.Second)}},
		{"hosts on undeclared AS", []TopologyOption{WithAS(1), WithHosts(2, "x")}},
		{"empty line", []TopologyOption{WithLine(1, 0, 0)}},
		{"empty star", []TopologyOption{WithStar(1, 0, 0)}},
		{"empty mesh", []TopologyOption{WithFullMesh(1, -1, 0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(1, tc.topo...); !errors.Is(err, ErrBadTopology) {
				t.Errorf("New() err = %v, want ErrBadTopology", err)
			}
		})
	}
}

// TestTopologyGenerators checks that line, star and full-mesh layouts
// route end to end: the two most distant hosts of each shape complete a
// handshake and exchange data.
func TestTopologyGenerators(t *testing.T) {
	shapes := []struct {
		name        string
		topo        []TopologyOption
		src, dst    AID
		wantTransit AID // an AS that must carry transit traffic (0 = none)
	}{
		{"line", []TopologyOption{WithLine(10, 4, time.Millisecond),
			WithHosts(10, "src"), WithHosts(13, "dst")}, 10, 13, 11},
		{"star", []TopologyOption{WithStar(50, 3, time.Millisecond),
			WithHosts(51, "src"), WithHosts(53, "dst")}, 51, 53, 50},
		{"mesh", []TopologyOption{WithFullMesh(90, 4, time.Millisecond),
			WithHosts(90, "src"), WithHosts(93, "dst")}, 90, 93, 0},
	}
	for _, tc := range shapes {
		t.Run(tc.name, func(t *testing.T) {
			in, err := New(1, tc.topo...)
			if err != nil {
				t.Fatal(err)
			}
			src, dst := in.Host("src"), in.Host("dst")
			if src == nil || dst == nil {
				t.Fatal("hosts not registered")
			}
			if src.AS().AID != tc.src || dst.AS().AID != tc.dst {
				t.Fatalf("hosts on %v/%v, want %v/%v", src.AS().AID, dst.AS().AID, tc.src, tc.dst)
			}
			ps, pd := src.NewEphIDAsync(ephid.KindData, 900), dst.NewEphIDAsync(ephid.KindData, 900)
			if err := in.AwaitAll(ps, pd); err != nil {
				t.Fatal(err)
			}
			idS, _ := ps.Result()
			idD, _ := pd.Result()
			conn, err := src.Connect(idS, &idD.Cert, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := src.Send(conn, []byte("across the "+tc.name)); err != nil {
				t.Fatal(err)
			}
			if msgs := dst.Stack.Inbox(); len(msgs) != 1 {
				t.Fatalf("delivered %d messages", len(msgs))
			}
			if tc.wantTransit != 0 && in.AS(tc.wantTransit).Router.Stats().Transited.Load() == 0 {
				t.Errorf("no transit through AS %v", tc.wantTransit)
			}
			// In a full mesh every path is direct: no transit anywhere.
			if tc.name == "mesh" {
				for _, aid := range []AID{90, 91, 92, 93} {
					if n := in.AS(aid).Router.Stats().Transited.Load(); n != 0 {
						t.Errorf("mesh AS %v transited %d packets", aid, n)
					}
				}
			}
		})
	}
}

func TestTopologyChainableAPI(t *testing.T) {
	in, err := NewTopology().
		AS(1, "alice").
		AS(2).
		Hosts(2, "bob").
		Link(1, 2, 2*time.Millisecond).
		Build(42)
	if err != nil {
		t.Fatal(err)
	}
	if in.Host("alice") == nil || in.Host("bob") == nil {
		t.Fatal("hosts missing")
	}
	if got := len(in.Hosts()); got != 2 {
		t.Fatalf("Hosts() = %d", got)
	}
	if _, err := in.AddHost(1, "alice"); !errors.Is(err, ErrDuplicateHost) {
		t.Errorf("duplicate AddHost err = %v", err)
	}
}

func TestWithOptionsReachesSimulation(t *testing.T) {
	opts := DefaultOptions()
	opts.StrikeLimit = 1
	in, err := New(1, WithOptions(opts), WithAS(1, "a"), WithAS(2, "b"),
		WithLink(1, 2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if in.opts.StrikeLimit != 1 {
		t.Errorf("StrikeLimit = %d", in.opts.StrikeLimit)
	}
}

// TestASGraphGenerator checks the provider/customer hierarchy without
// building an internet: AS count, connectivity, the degree bound the
// relay fan-out gate relies on, and determinism.
func TestASGraphGenerator(t *testing.T) {
	g := ASGraphConfig{Core: 4, Mid: 8, Stubs: 24, ProvidersPerAS: 2,
		CoreLatency: time.Millisecond, Latency: 5 * time.Millisecond}
	gen := func() *Topology { return NewTopology().ASGraph(1000, g) }
	topo := gen()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	total := g.Core + g.Mid + g.Stubs
	if len(topo.ases) != total {
		t.Fatalf("%d ASes, want %d", len(topo.ases), total)
	}
	// Every non-core AS has exactly ProvidersPerAS provider links;
	// total links = core mesh + provider edges.
	wantLinks := g.Core*(g.Core-1)/2 + (g.Mid+g.Stubs)*g.ProvidersPerAS
	if len(topo.links) != wantLinks {
		t.Fatalf("%d links, want %d", len(topo.links), wantLinks)
	}
	// Degree bound: a core AS carries the clique plus its round-robin
	// share of mid customers; a mid AS its providers plus stub share.
	deg := make(map[AID]int)
	adj := make(map[AID][]AID)
	for _, l := range topo.links {
		deg[l.a]++
		deg[l.b]++
		adj[l.a] = append(adj[l.a], l.b)
		adj[l.b] = append(adj[l.b], l.a)
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	coreBound := g.Core - 1 + (g.Mid*g.ProvidersPerAS+g.Core-1)/g.Core
	midBound := g.ProvidersPerAS + (g.Stubs*g.ProvidersPerAS+g.Mid-1)/g.Mid
	bound := coreBound
	if midBound > bound {
		bound = midBound
	}
	if maxDeg > bound {
		t.Fatalf("max degree %d exceeds round-robin bound %d", maxDeg, bound)
	}
	// Connectivity: BFS from the first core AS reaches every AS.
	seen := map[AID]bool{1000: true}
	queue := []AID{1000}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(seen) != total {
		t.Fatalf("BFS reached %d of %d ASes", len(seen), total)
	}
	// Determinism: a second generation yields the identical link list.
	again := gen()
	for i, l := range topo.links {
		if again.links[i] != l {
			t.Fatalf("link %d differs between generations: %v vs %v", i, l, again.links[i])
		}
	}
	// Generator argument validation.
	for _, bad := range []ASGraphConfig{{Core: 0}, {Core: 1, Stubs: 3}} {
		if err := NewTopology().ASGraph(1, bad).Validate(); !errors.Is(err, ErrBadTopology) {
			t.Errorf("ASGraph(%+v) err = %v, want ErrBadTopology", bad, err)
		}
	}
}

// TestASGraphRelayDissemination builds a small provider hierarchy with
// relay-mode dissemination and checks a revocation noted at one stub
// reaches the remote revocation list of a stub homed to different
// providers — four overlay hops, batches riding real simulated links.
func TestASGraphRelayDissemination(t *testing.T) {
	const interval = time.Second
	in, err := New(7,
		WithASGraph(100, ASGraphConfig{Core: 2, Mid: 2, Stubs: 4, ProvidersPerAS: 1,
			CoreLatency: time.Millisecond, Latency: 2 * time.Millisecond}),
		WithDissemination(Dissemination{Interval: interval, Mode: DisseminateRelay}),
	)
	if err != nil {
		t.Fatal(err)
	}
	// With ProvidersPerAS=1 the shape is a tree: stubs 104..107 hang off
	// mids 102/103, which hang off cores 100/101.
	origin, far := AID(104), AID(107)
	id := EphID{0xaa, 0xbb, 1}
	exp := uint32(in.Now() + 3600)
	in.AS(origin).Acct.NoteRevoked(id, exp)
	in.RunFor(7 * interval)
	if !in.AS(far).Router.RemoteRevoked().Matches(id, origin) {
		t.Fatal("revocation did not traverse the relay overlay")
	}
	// Bounded fan-out: each engine sent at most degree messages per
	// interval (plus nothing before the origin had state).
	for _, as := range in.ASes() {
		st := as.Acct.Stats()
		degree := len(in.adjacency[as.AID])
		if st.MessagesSent > uint64(degree)*8 {
			t.Fatalf("AS %v sent %d digest messages over 7 intervals (degree %d)",
				as.AID, st.MessagesSent, degree)
		}
	}
}
